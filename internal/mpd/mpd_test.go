package mpd

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/mpi"
	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// testbed is a small two-site world: the submitter frontend plus compute
// peers split between a near and a far site.
type testbed struct {
	s     *vtime.Scheduler
	net   *simnet.Net
	sn    *overlay.Supernode
	front *MPD
	peers []*MPD
}

// echoRank is a tiny MPI program: allreduce the ranks, print the result.
func echoRank(env *Env) error {
	c, err := env.Comm()
	if err != nil {
		return err
	}
	sum, err := c.AllreduceI64([]int64{int64(env.Rank)}, mpi.OpSum)
	if err != nil {
		return err
	}
	fmt.Fprintf(&env.Out, "rank=%d sum=%d", env.Rank, sum[0])
	return nil
}

func programs() map[string]Program {
	return map[string]Program{
		"hostname": Hostname,
		"echorank": echoRank,
		"spin":     Spin,
		"fail":     func(env *Env) error { return fmt.Errorf("boom") },
	}
}

// peerByID finds a compute peer daemon by host ID.
func (tb *testbed) peerByID(id string) *MPD {
	for _, p := range tb.peers {
		if p.cfg.Self.ID == id {
			return p
		}
	}
	return nil
}

// killHost emulates the churn driver's Down hook: the network drops the
// host and its daemon crashes (jobs die unreported, RS resets).
func (tb *testbed) killHost(id string) {
	tb.net.FailHost(id)
	if p := tb.peerByID(id); p != nil {
		p.Crash()
	}
}

// newTestbed builds nNear peers on site "near" (0.1ms one way) and nFar
// peers on site "far" (5ms one way).
func newTestbed(t *testing.T, nNear, nFar int, coresPerHost int) *testbed {
	t.Helper()
	s := vtime.New()
	t.Cleanup(s.Shutdown)

	hostSite := map[string]string{"frontal": "near"}
	var names []string
	for i := 0; i < nNear; i++ {
		h := fmt.Sprintf("near%02d", i)
		hostSite[h] = "near"
		names = append(names, h)
	}
	for i := 0; i < nFar; i++ {
		h := fmt.Sprintf("far%02d", i)
		hostSite[h] = "far"
		names = append(names, h)
	}
	topo := &simnet.StaticTopology{
		HostSite: hostSite,
		Lat: map[[2]string]time.Duration{
			{"near", "near"}: 100 * time.Microsecond,
			{"far", "far"}:   100 * time.Microsecond,
			{"far", "near"}:  5 * time.Millisecond,
		},
	}
	net := simnet.New(s, topo, simnet.Config{Seed: 31, JitterFrac: 0.02,
		JitterFloor: 20 * time.Microsecond, NICBps: 1e9})

	tb := &testbed{s: s, net: net}
	tb.sn = overlay.NewSupernode(s, net.Node("frontal"), overlay.SupernodeConfig{
		Addr: "frontal:8800", TTL: 5 * time.Minute,
	})

	mkCfg := func(id string, p int) Config {
		return Config{
			Self: proto.PeerInfo{
				ID: id, Site: hostSite[id],
				MPDAddr: id + ":9000", RSAddr: id + ":9001",
			},
			P:       p,
			J:       1,
			Profile: HostProfile{Cores: coresPerHost, CoreGFLOPS: 2, MemBWGBs: 5},
			Seed:    int64(len(id) * 7),
			Shared: &Shared{
				SupernodeAddr: "frontal:8800",
				Programs:      programs(),
				PingInterval:  10 * time.Second,
			},
		}
	}
	tb.front = New(s, net.Node("frontal"), mkCfg("frontal", 0))
	for _, h := range names {
		tb.peers = append(tb.peers, New(s, net.Node(h), mkCfg(h, coresPerHost)))
	}
	return tb
}

// boot starts everything and lets two ping rounds pass.
func (tb *testbed) boot(t *testing.T) {
	t.Helper()
	tb.s.Go("boot", func() {
		if err := tb.sn.Start(); err != nil {
			t.Errorf("supernode: %v", err)
			return
		}
		if err := tb.front.Start(); err != nil {
			t.Errorf("frontal: %v", err)
			return
		}
		for _, p := range tb.peers {
			if err := p.Start(); err != nil {
				t.Errorf("peer: %v", err)
				return
			}
		}
	})
	tb.s.RunFor(time.Second)
	// The frontal booted before most peers registered: refresh its cache
	// and measure, as the paper's MPD does before booking.
	tb.s.Go("warm", func() {
		if peers, err := overlay.FetchFrom(tb.front.net, "frontal:8800", time.Second); err == nil {
			tb.front.cache.Update(peers)
		}
		tb.front.pingRound()
	})
	tb.s.RunFor(30 * time.Second)
}

func (tb *testbed) close() {
	tb.sn.Close()
	tb.front.Close()
	for _, p := range tb.peers {
		p.Close()
	}
}

// submit runs a job from the frontal and returns the result.
func (tb *testbed) submit(t *testing.T, spec JobSpec) (*JobResult, error) {
	t.Helper()
	var res *JobResult
	var err error
	done := make(chan struct{})
	tb.s.Go("submit", func() {
		res, err = tb.front.Submit(spec)
		close(done)
	})
	for i := 0; i < 600; i++ {
		tb.s.RunFor(time.Second)
		select {
		case <-done:
			return res, err
		default:
		}
	}
	t.Fatal("submit did not finish within simulated budget")
	return nil, nil
}

func TestHostnameJobConcentrate(t *testing.T) {
	tb := newTestbed(t, 4, 4, 2)
	tb.boot(t)
	defer tb.close()

	res, err := tb.submit(t, JobSpec{
		Program: "hostname", N: 6, R: 1, Strategy: core.Concentrate,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Failures() != 0 {
		t.Fatalf("failures: %+v", res.Results)
	}
	if len(res.Results) != 6 {
		t.Fatalf("results = %d", len(res.Results))
	}
	// Concentrate with P=2: six processes on the three closest (near)
	// hosts, two per host.
	counts := map[string]int{}
	for _, r := range res.Results {
		counts[string(r.Output)]++
	}
	if len(counts) != 3 {
		t.Fatalf("used hosts = %v, want 3 near hosts", counts)
	}
	for h, c := range counts {
		if !strings.HasPrefix(h, "near") {
			t.Fatalf("concentrate picked far host %s (counts %v)", h, counts)
		}
		if c != 2 {
			t.Fatalf("host %s ran %d processes, want 2", h, c)
		}
	}
}

func TestHostnameJobSpread(t *testing.T) {
	tb := newTestbed(t, 4, 4, 2)
	tb.boot(t)
	defer tb.close()

	res, err := tb.submit(t, JobSpec{
		Program: "hostname", N: 6, R: 1, Strategy: core.Spread,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Spread: one process per host over the six closest hosts; with only
	// four near hosts, two far hosts are drafted.
	counts := map[string]int{}
	for _, r := range res.Results {
		counts[string(r.Output)]++
	}
	if len(counts) != 6 {
		t.Fatalf("used %d hosts, want 6: %v", len(counts), counts)
	}
	near := 0
	for h, c := range counts {
		if c != 1 {
			t.Fatalf("host %s ran %d, want 1", h, c)
		}
		if strings.HasPrefix(h, "near") {
			near++
		}
	}
	if near != 4 {
		t.Fatalf("spread used %d near hosts, want all 4 first", near)
	}
}

func TestMPIProgramAcrossHosts(t *testing.T) {
	tb := newTestbed(t, 4, 2, 2)
	tb.boot(t)
	defer tb.close()

	res, err := tb.submit(t, JobSpec{
		Program: "echorank", N: 5, R: 1, Strategy: core.Spread,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Failures() != 0 {
		t.Fatalf("failures: %+v", res.Results)
	}
	for _, r := range res.Results {
		want := fmt.Sprintf("rank=%d sum=10", r.Rank)
		if string(r.Output) != want {
			t.Fatalf("rank %d output %q, want %q", r.Rank, r.Output, want)
		}
	}
}

func TestReplicatedJob(t *testing.T) {
	tb := newTestbed(t, 4, 2, 2)
	tb.boot(t)
	defer tb.close()

	res, err := tb.submit(t, JobSpec{
		Program: "hostname", N: 3, R: 2, Strategy: core.Spread,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(res.Results) != 6 || res.Failures() != 0 {
		t.Fatalf("results: %+v", res.Results)
	}
	// No two replicas of one rank on the same host.
	byRank := map[int][]string{}
	for _, r := range res.Results {
		byRank[r.Rank] = append(byRank[r.Rank], string(r.Output))
	}
	for rank, hosts := range byRank {
		if len(hosts) != 2 || hosts[0] == hosts[1] {
			t.Fatalf("rank %d replicas on %v", rank, hosts)
		}
	}
}

func TestInfeasibleRequestFails(t *testing.T) {
	tb := newTestbed(t, 2, 2, 2)
	tb.boot(t)
	defer tb.close()

	_, err := tb.submit(t, JobSpec{
		Program: "hostname", N: 50, R: 1, Strategy: core.Spread,
	})
	if err == nil {
		t.Fatal("oversized request succeeded")
	}
	// All reservations must have been cancelled.
	tb.s.RunFor(5 * time.Second)
	for _, p := range tb.peers {
		if h := p.RS().Held(); h != 0 {
			t.Fatalf("peer still holds %d reservations after failure", h)
		}
	}
}

func TestFailingProgramReported(t *testing.T) {
	tb := newTestbed(t, 2, 0, 2)
	tb.boot(t)
	defer tb.close()

	res, err := tb.submit(t, JobSpec{
		Program: "fail", N: 2, R: 1, Strategy: core.Spread,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Failures() != 2 {
		t.Fatalf("failures = %d, want 2 (%+v)", res.Failures(), res.Results)
	}
	for _, r := range res.Results {
		if r.OK || !strings.Contains(r.Err, "boom") {
			t.Fatalf("result %+v", r)
		}
	}
}

func TestUnknownProgramRejectedLocally(t *testing.T) {
	tb := newTestbed(t, 2, 0, 2)
	tb.boot(t)
	defer tb.close()
	_, err := tb.submit(t, JobSpec{Program: "nosuch", N: 1, R: 1})
	if err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestDeadPeerMarkedAndJobStillRuns(t *testing.T) {
	tb := newTestbed(t, 4, 2, 2)
	tb.boot(t)
	defer tb.close()

	// Kill one near peer after warmup; its RS goes silent.
	dead := tb.peers[1]
	tb.net.FailHost(dead.cfg.Self.ID)

	res, err := tb.submit(t, JobSpec{
		Program: "hostname", N: 6, R: 1, Strategy: core.Spread,
		Timeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("submit despite dead peer: %v", err)
	}
	if res.Failures() != 0 {
		t.Fatalf("failures: %+v", res.Results)
	}
	for _, r := range res.Results {
		if string(r.Output) == dead.cfg.Self.ID {
			t.Fatalf("dead host %s ran a process", dead.cfg.Self.ID)
		}
	}
	if _, ok := tb.front.Cache().Peer(dead.cfg.Self.ID); ok {
		t.Fatal("dead peer not marked dead in the cache")
	}
}

func TestJLimitSecondJobRefused(t *testing.T) {
	tb := newTestbed(t, 2, 0, 2)
	tb.boot(t)
	defer tb.close()

	// Occupy both peers with held reservations via a raw broker round,
	// then a real submission must fail (J=1 everywhere).
	tb.s.Go("occupy", func() {
		var cands []proto.PeerInfo
		for _, p := range tb.peers {
			cands = append(cands, p.cfg.Self)
		}
		// Hold keys directly on the RS of each peer.
		for _, p := range tb.peers {
			p.RS().Consume("occupied") // unknown key: no-op
		}
	})
	tb.s.RunFor(time.Second)
	for _, p := range tb.peers {
		// Simulate an already-running app through the public surface.
		p.RS().Release("none")
	}

	// Simpler: occupy via an actual long job, then submit another.
	long := func(env *Env) error {
		env.RT.Sleep(2 * time.Minute)
		return nil
	}
	tb.front.cfg.Programs["long"] = long
	for _, p := range tb.peers {
		p.cfg.Programs["long"] = long
	}
	type out struct {
		res *JobResult
		err error
	}
	firstDone := make(chan out, 1)
	tb.s.Go("first", func() {
		r, e := tb.front.Submit(JobSpec{Program: "long", N: 2, R: 1,
			Strategy: core.Spread, Timeout: 5 * time.Minute})
		firstDone <- out{r, e}
	})
	tb.s.RunFor(20 * time.Second) // first job is now running on both peers

	var secondErr error
	second := make(chan struct{})
	tb.s.Go("second", func() {
		_, secondErr = tb.front.Submit(JobSpec{Program: "hostname", N: 2, R: 1,
			Strategy: core.Spread, Timeout: time.Minute})
		close(second)
	})
	for i := 0; i < 400; i++ {
		tb.s.RunFor(time.Second)
		select {
		case <-second:
			i = 400
		default:
		}
	}
	if secondErr == nil {
		t.Fatal("second job accepted while J=1 apps were running")
	}
	// Let the first job finish cleanly.
	for i := 0; i < 300; i++ {
		tb.s.RunFor(time.Second)
		select {
		case o := <-firstDone:
			if o.err != nil {
				t.Fatalf("first job: %v", o.err)
			}
			return
		default:
		}
	}
	t.Fatal("first job never finished")
}

func TestComputeModelContention(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	var solo, shared time.Duration
	s.Go("solo", func() {
		env := &Env{RT: s, CoLocated: 1,
			Profile: HostProfile{CoreGFLOPS: 2, MemBWGBs: 5}}
		t0 := s.Elapsed()
		env.Compute(1e9, 5e9) // memory bound: 1s at full bandwidth
		solo = s.Elapsed() - t0
	})
	s.Wait()
	s.Go("shared", func() {
		env := &Env{RT: s, CoLocated: 4,
			Profile: HostProfile{CoreGFLOPS: 2, MemBWGBs: 5}}
		t0 := s.Elapsed()
		env.Compute(1e9, 5e9)
		shared = s.Elapsed() - t0
	})
	s.Wait()
	if solo != time.Second {
		t.Fatalf("solo compute = %v, want 1s", solo)
	}
	if shared != 4*time.Second {
		t.Fatalf("4-way shared compute = %v, want 4s", shared)
	}
}

func TestComputeCPUBoundUnaffectedByNeighbours(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	var d time.Duration
	s.Go("cpu", func() {
		env := &Env{RT: s, CoLocated: 4,
			Profile: HostProfile{CoreGFLOPS: 2, MemBWGBs: 5}}
		t0 := s.Elapsed()
		env.Compute(4e9, 1e6) // cpu bound: 2s on a 2 GFLOPS core
		d = s.Elapsed() - t0
	})
	s.Wait()
	if d != 2*time.Second {
		t.Fatalf("cpu-bound compute = %v, want 2s", d)
	}
}
