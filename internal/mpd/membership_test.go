package mpd

import (
	"testing"
	"time"

	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// TestPeerReappearsAfterExpiry: a peer expired by the supernode (its
// alive signals were lost for longer than the TTL) must eventually be
// re-listed through the alive loop's periodic re-registration.
func TestPeerReappearsAfterExpiry(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	hostSite := map[string]string{"sn": "x", "p1": "x"}
	net := simnet.New(s, &simnet.StaticTopology{HostSite: hostSite, DefLat: time.Millisecond},
		simnet.Config{Seed: 5, NICBps: 1e9})

	sn := overlay.NewSupernode(s, net.Node("sn"), overlay.SupernodeConfig{
		Addr: "sn:8800", TTL: 20 * time.Second, SweepInterval: 5 * time.Second,
	})
	peer := New(s, net.Node("p1"), Config{
		Self: proto.PeerInfo{ID: "p1", Site: "x",
			MPDAddr: "p1:9000", RSAddr: "p1:9001"},
		P: 1,
		Shared: &Shared{
			SupernodeAddr:  "sn:8800",
			Programs:       programs(),
			AliveInterval:  10 * time.Second,
			PingInterval:   time.Hour,
			ReserveTimeout: time.Second,
		},
	})

	s.Go("main", func() {
		if err := sn.Start(); err != nil {
			t.Errorf("sn: %v", err)
			return
		}
		if err := peer.Start(); err != nil {
			t.Errorf("peer: %v", err)
		}
	})
	s.RunFor(5 * time.Second)
	if sn.PeerCount() != 1 {
		t.Fatalf("peer not registered: %d", sn.PeerCount())
	}

	// Partition the peer for longer than the TTL; the supernode expires
	// it.
	net.FailHost("p1")
	s.RunFor(40 * time.Second)
	if sn.PeerCount() != 0 {
		t.Fatalf("expired peer still listed: %d", sn.PeerCount())
	}

	// Heal the partition: within a few alive ticks the peer must
	// re-register itself (the bare Alive signal cannot resurrect it).
	net.RestoreHost("p1")
	s.RunFor(2 * time.Minute)
	if sn.PeerCount() != 1 {
		t.Fatalf("peer did not self-heal after partition: %d", sn.PeerCount())
	}
	sn.Close()
	peer.Close()
	s.RunFor(time.Minute)
}
