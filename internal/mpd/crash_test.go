package mpd

import (
	"testing"
	"time"

	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
)

// TestCrashFreesPreparedEndpoints: a crash in the Prepare-acked-but-
// unstarted window must close the job's pre-bound MPI endpoints.
// Listeners survive a simnet reboot by design, so a leak here would
// leave the process ports taken forever and every later launch on the
// revived host would fail its Prepare.
func TestCrashFreesPreparedEndpoints(t *testing.T) {
	tb := newTestbed(t, 2, 0, 2)
	tb.boot(t)
	defer tb.close()
	peer := tb.peers[0]
	host := peer.cfg.Self.ID
	procAddr := host + ":41000"

	done := make(chan struct{})
	tb.s.Go("drive", func() {
		defer close(done)
		// Hold a reservation at the peer's RS, then run launch phase
		// one only: the MPI endpoints are now pre-bound.
		reply, err := transport.RequestReply(tb.net.Node("frontal"), peer.cfg.Self.RSAddr,
			transport.Message{Payload: proto.MustMarshal(&proto.Reserve{
				Key: "crashkey", JobID: "crashjob",
				Submitter: proto.PeerInfo{ID: "frontal"}, N: 1,
			})}, time.Second)
		if err != nil {
			t.Errorf("reserve: %v", err)
			return
		}
		if _, msg, err := proto.Unmarshal(reply.Payload); err != nil {
			t.Errorf("reserve reply: %v", err)
			return
		} else if _, ok := msg.(*proto.ReserveOK); !ok {
			t.Errorf("reserve refused: %+v", msg)
			return
		}
		rdy := peer.handlePrepare(&proto.Prepare{
			Key: "crashkey", JobID: "crashjob", Program: "hostname",
			N: 1, R: 1,
			Table:        []proto.Slot{{Rank: 0, Replica: 0, Global: 0, HostID: host, Addr: procAddr}},
			SubmitterMPD: "frontal:9000",
		})
		if !rdy.OK {
			t.Errorf("prepare refused: %s", rdy.Reason)
			return
		}
		if _, err := tb.net.Node(host).Listen(procAddr); err == nil {
			t.Error("process port free while the job is prepared")
			return
		}
		peer.Crash()
		ln, err := tb.net.Node(host).Listen(procAddr)
		if err != nil {
			t.Errorf("crash leaked the prepared MPI endpoint: %v", err)
			return
		}
		ln.Close()
		if peer.RS().Running() != 0 || peer.RS().Held() != 0 {
			t.Errorf("crash left RS state: running=%d held=%d",
				peer.RS().Running(), peer.RS().Held())
		}
	})
	for i := 0; i < 60; i++ {
		tb.s.RunFor(time.Second)
		select {
		case <-done:
			return
		default:
		}
	}
	t.Fatal("test driver stalled")
}
