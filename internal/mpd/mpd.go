// Package mpd implements the MPD daemon (§3.2): the per-host background
// process started by mpiboot. It maintains the peer cache with measured
// latencies, sends alive signals to the supernode, answers latency pings,
// acts as gatekeeper for the local resource (owner's J and P settings via
// the co-located Reservation Service) and coordinates the whole §4.2 job
// submission: booking with overbooking, RS-RS brokering, slist
// extraction, feasibility, allocation-strategy placement, rank
// distribution and the two-phase launch with hash-key validation.
package mpd

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"time"

	"p2pmpi/internal/latency"
	"p2pmpi/internal/mpi"
	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/reservation"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// HostProfile carries the performance characteristics the modelled NAS
// runs consume through Env.Compute.
type HostProfile struct {
	// Cores is the host's core count.
	Cores int
	// CoreGFLOPS is the sustained per-core compute rate.
	CoreGFLOPS float64
	// MemBWGBs is the host memory bandwidth shared by co-located
	// processes.
	MemBWGBs float64
}

// Env is the execution environment handed to each launched MPI process.
type Env struct {
	// Rank, Size, Replica, R locate this process in the application.
	Rank    int
	Size    int
	Replica int
	R       int
	// Slot is this process's table entry; Table the full placement.
	Slot  mpi.Slot
	Table []mpi.Slot
	// HostID names the hosting peer; CoLocated counts this job's
	// processes on this host (drives the memory-contention model).
	HostID    string
	CoLocated int
	// Args are the job arguments.
	Args []string
	// RT and Net bind the process to its runtime and network.
	RT  vtime.Runtime
	Net transport.Network
	// Out collects the process output, returned to the submitter.
	Out bytes.Buffer
	// Profile is the hosting hardware model.
	Profile HostProfile

	comm    *mpi.Comm
	algs    mpi.Algorithms
	joinErr error
	// kill is armed (non-nil) for preemptable jobs: a KillJob closes it,
	// waking any SleepPreemptible early.
	kill vtime.Mailbox
}

// Comm returns the process's communicator (joined during Prepare).
func (e *Env) Comm() (*mpi.Comm, error) {
	if e.comm == nil && e.joinErr == nil {
		return nil, fmt.Errorf("mpd: communicator not initialized")
	}
	return e.comm, e.joinErr
}

// SleepPreemptible sleeps for d like RT.Sleep, but wakes early with
// ErrPreempted when the job is checkpoint-killed meanwhile (scheduler
// preemption). For non-preemptable jobs — no kill channel armed — it is
// exactly RT.Sleep: same timer, same virtual trajectory.
func (e *Env) SleepPreemptible(d time.Duration) error {
	if e.kill == nil {
		e.RT.Sleep(d)
		return nil
	}
	if _, err := e.kill.PopTimeout(d); err == vtime.ErrTimeout {
		return nil
	}
	return ErrPreempted
}

// Compute advances time as if the process performed the given floating
// point work and memory traffic. Co-located processes of the job share
// the host memory bandwidth, which is the paper's concentrate-strategy
// contention effect; each process has its own core (P never exceeds the
// core count in the experiments), so CPU time is not shared.
func (e *Env) Compute(flops, memBytes float64) {
	if e.Profile.CoreGFLOPS <= 0 || e.Profile.MemBWGBs <= 0 {
		return // no model configured (real runs do real work instead)
	}
	tCPU := flops / (e.Profile.CoreGFLOPS * 1e9)
	tMem := memBytes * float64(e.CoLocated) / (e.Profile.MemBWGBs * 1e9)
	t := tCPU
	if tMem > t {
		t = tMem
	}
	e.RT.Sleep(time.Duration(t * float64(time.Second)))
}

// Program is an MPI application body, one invocation per process.
type Program func(env *Env) error

// Config assembles one peer's daemon settings: the fields that vary
// per peer, plus an embedded *Shared block for everything that is
// identical across a deployment. The split is a memory decision, not a
// cosmetic one: a simulated world holds every daemon in one process,
// and a million hosts each carrying a private copy of the protocol
// timing, program registry and federation list is hundreds of MB of
// identical bytes. Standalone deployments may leave Shared nil — New
// allocates a private defaulted block.
type Config struct {
	// Self identifies this peer; its MPDAddr/RSAddr are the listen
	// addresses.
	Self proto.PeerInfo
	// P and J are the owner preferences (§4.1); Deny lists refused
	// submitters.
	P, J int
	Deny []string
	// Profile describes the hardware for modelled computations.
	Profile HostProfile
	// Seed makes key generation deterministic.
	Seed int64
	// Shared is the deployment-invariant half of the configuration.
	// One block may back every daemon of a world; New treats it as
	// read-only after defaulting (concurrency-safe, see fillDefaults).
	*Shared
}

// Shared is the deployment-invariant half of Config. Its fields are
// promoted into Config, so daemon code reads cfg.PingInterval etc.
// exactly as before the split.
type Shared struct {
	// SupernodeAddr is the bootstrap entry point. The paper's MPD "knows
	// at least one supernode": additional fallbacks can be listed in
	// SupernodeFallbacks and are tried in order when the primary fails.
	SupernodeAddr      string
	SupernodeFallbacks []string
	// Federation lists every supernode of a federated membership tier in
	// shard order. When set (len > 1) it supersedes SupernodeAddr and
	// SupernodeFallbacks: the daemon computes its home shard with
	// overlay.ShardAssign(Self.ID, K), registers there first, and fails
	// over across the remaining shards in a deterministic home-anchored
	// rotation — a foreign shard fosters the peer (Forced register) until
	// the home member answers again.
	Federation []string
	// Programs is the runnable application registry.
	Programs map[string]Program

	// Protocol timing (defaults in parentheses).
	PingInterval    time.Duration // latency probe period (20s)
	AliveInterval   time.Duration // supernode keep-alive period (30s)
	RefreshInterval time.Duration // cache refresh period (60s)
	ReserveTimeout  time.Duration // RS brokering timeout (2s)
	PrepareTimeout  time.Duration // launch phase-one timeout (10s)
	StartTimeout    time.Duration // launch phase-two timeout (10s)

	// Overbook inflates the booking fan-out to anticipate unavailable
	// hosts (1.2).
	Overbook float64
	// Estimator selects how ping samples become the ordering latency
	// (KindLast, the paper's behaviour).
	Estimator       latency.Kind
	EstimatorWindow int
	// ProcBasePort is the first port used by launched processes (41000).
	ProcBasePort int
	// NoBootPing skips the immediate ping round after registration. Boot
	// probing is all-pairs across the deployment, which the large-world
	// harness cannot afford for compute peers whose own latency view is
	// never consulted (only the submitter's ordering matters); the
	// periodic ping loop still runs at PingInterval.
	NoBootPing bool
	// Intern, when set, canonicalizes the PeerInfo values this daemon
	// retains (its identity and its cache's tables) against a
	// deployment-wide interner. Behaviour-neutral; exp worlds share one.
	Intern *overlay.Interner
	// RPCRetries is the robustness layer's re-attempt budget for
	// retryable control-plane RPC failures (supernode register/fetch/
	// alive, launch fan-outs, JobDone retransmits). Zero keeps every
	// exchange single-shot — the paper's behaviour and the default, so
	// fault-free worlds replay identically with the layer compiled in.
	RPCRetries int
	// RPCBackoff is the base pause before the first retry; attempt k
	// waits RPCBackoff·2^(k-1) scaled by seeded jitter in [0.5, 1.5)
	// (default 1s).
	RPCBackoff time.Duration
	// BreakerThreshold consecutive failures against one supernode open
	// a per-member circuit breaker for BreakerCooldown (default 30s):
	// the daemon skips that member in its failover rotation instead of
	// burning a full retry budget against a gray member every round.
	// Zero disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PeerCacheCap bounds the total peer entries the cache retains
	// before anything reads it (0 = unbounded); see
	// overlay.Cache.SetPendingCap. The harness sets it only for compute
	// peers of multi-thousand-host sweeps whose caches feed no
	// measurement.
	PeerCacheCap int

	// defaultsOnce makes defaulting safe when one block backs daemons
	// constructed from parallel provisioning workers: the first New
	// wins, every later one sees a fully defaulted block.
	defaultsOnce sync.Once
}

func (c *Config) fillDefaults() {
	if c.Shared == nil {
		c.Shared = &Shared{}
	}
	c.Shared.fillDefaults()
	if c.J <= 0 {
		c.J = 1
	}
}

func (s *Shared) fillDefaults() {
	s.defaultsOnce.Do(func() {
		if s.PingInterval <= 0 {
			s.PingInterval = 20 * time.Second
		}
		if s.AliveInterval <= 0 {
			s.AliveInterval = 30 * time.Second
		}
		if s.RefreshInterval <= 0 {
			s.RefreshInterval = 60 * time.Second
		}
		if s.ReserveTimeout <= 0 {
			s.ReserveTimeout = 2 * time.Second
		}
		if s.PrepareTimeout <= 0 {
			s.PrepareTimeout = 10 * time.Second
		}
		if s.StartTimeout <= 0 {
			s.StartTimeout = 10 * time.Second
		}
		if s.Overbook <= 0 {
			s.Overbook = 1.2
		}
		if s.Estimator == "" {
			s.Estimator = latency.KindLast
		}
		if s.ProcBasePort <= 0 {
			s.ProcBasePort = 41000
		}
	})
}

// MPD is one peer's daemon.
type MPD struct {
	rt  vtime.Runtime
	net transport.Network
	cfg Config

	cache *overlay.Cache
	rs    *reservation.Service

	mu          sync.Mutex
	ln          transport.Listener
	closed      bool
	jobs        map[string]*localJob     // by key (hosting side), lazy
	pendingDone map[string]vtime.Mailbox // by jobID (submitter side), lazy
	// rng is built on first draw. An eager rand.Rand is ~5 KB of state
	// (the biggest single item on the idle daemon's footprint) and an
	// idle peer never draws — laziness changes nothing observable, the
	// same seed produces the same stream whenever it is first used.
	rng    *rand.Rand
	lc     lifecycle
	tickFn func() // m.lifecycleTick, bound once so re-arming never allocates a closure
	stats  Stats
	// brk holds one circuit breaker per supernode address (lazy; nil
	// until BreakerThreshold > 0 records an outcome). retrySeq holds
	// one SplitMix64 jitter stream per retry target, separate from rng
	// so enabling retries never perturbs the nonce/key draws — and
	// per-target so membership-plane retries (whose count depends on
	// the federation width) cannot shift the jitter that job-plane
	// retries to compute hosts draw.
	brk      map[string]*transport.Breaker
	retrySeq map[string]uint64
}

// lifecycle is the daemon's periodic-work state: one pending timer
// event instead of three parked loop goroutines per host. Each round
// still runs in its own short-lived actor; the timer chain only decides
// when to spawn them. Deadlines are re-armed by the round that just
// completed — the same drift semantics as the old sleep-then-act loops,
// so virtual trajectories are unchanged. Guarded by MPD.mu.
type lifecycle struct {
	aliveAt, refreshAt, pingAt time.Time // absolute next deadlines
	aliveTick                  int       // counts alive rounds for the re-register cadence
	timerAt                    time.Time // earliest pending timer target (zero: none)
}

// Stats counts protocol events for tests and reporting.
type Stats struct {
	PingsSent     int64
	PingsAnswered int64
	JobsHosted    int64
	JobsSubmitted int64
	// Registrations counts successful supernode registrations and
	// RegNanos their summed exchange round-trip time (the federation
	// scale sweeps report the mean).
	Registrations int64
	RegNanos      int64
	// SNFailovers counts registrations that landed on a non-home shard
	// (fostered); SNRedirects counts ShardRedirect answers followed.
	SNFailovers int64
	SNRedirects int64
	// RPCRetries counts re-attempts the robustness layer issued (extra
	// tries beyond each exchange's first); BreakerSkips counts supernode
	// exchanges skipped because the member's circuit breaker was open.
	RPCRetries   int64
	BreakerSkips int64
}

// localJob is one hosted application on this peer.
type localJob struct {
	key     string
	jobID   string
	prep    *proto.Prepare
	program Program
	envs    []*Env
	started bool
	// aborted is set by Crash: the host died mid-run, so the job must
	// neither report completion nor touch the (already reset) RS.
	aborted bool
}

// New creates an MPD daemon (not yet started).
func New(rt vtime.Runtime, net transport.Network, cfg Config) *MPD {
	cfg.fillDefaults()
	// Registering self's canonical value up front means every wire copy
	// of this host's info — in supernode tables and other peers' caches
	// — dedupes against it.
	cfg.Self = cfg.Intern.PeerInfo(cfg.Self)
	m := &MPD{
		rt:    rt,
		net:   net,
		cfg:   cfg,
		cache: overlay.NewCache(cfg.Self.ID, cfg.Estimator, cfg.EstimatorWindow),
	}
	m.cache.SetInterner(cfg.Intern)
	if cfg.PeerCacheCap > 0 {
		m.cache.SetPendingCap(cfg.PeerCacheCap)
	}
	m.rs = reservation.New(rt, net, reservation.Config{
		Addr: cfg.Self.RSAddr,
		J:    cfg.J,
		P:    cfg.P,
		Deny: cfg.Deny,
	})
	return m
}

// Cache exposes the peer cache (tests and experiment harness).
func (m *MPD) Cache() *overlay.Cache { return m.cache }

// RS exposes the co-located reservation service (tests).
func (m *MPD) RS() *reservation.Service { return m.rs }

// Stats returns a copy of the daemon counters.
func (m *MPD) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Start boots the daemon: RS, MPD listener, supernode registration and
// the periodic loops (mpiboot's effect, §3.2).
func (m *MPD) Start() error {
	if err := m.rs.Start(); err != nil {
		return fmt.Errorf("mpd: start rs: %w", err)
	}
	ln, err := m.net.Listen(m.cfg.Self.MPDAddr)
	if err != nil {
		m.rs.Close()
		return fmt.Errorf("mpd: listen: %w", err)
	}
	m.mu.Lock()
	m.ln = ln
	m.mu.Unlock()

	// Inbound conns spawn their serving actor straight from the
	// transport's delivery callback when the listener supports it — an
	// idle daemon then parks no accept goroutine at all. The Accept
	// loop remains for transports without the capability (TCP).
	if cl, ok := ln.(transport.CallbackListener); ok {
		cl.OnConn(func(c transport.Conn) {
			m.rt.Go("mpd.conn."+m.cfg.Self.ID, func() { m.serveConn(c) })
		})
	} else {
		m.rt.Go("mpd.accept."+m.cfg.Self.ID, m.acceptLoop)
	}
	m.rt.Go("mpd.boot."+m.cfg.Self.ID, func() {
		m.registerAndUpdate()
		if !m.cfg.NoBootPing {
			m.pingRound() // measure latencies right away
		}
	})
	// Periodic work runs on the lifecycle timer chain: one pending
	// event per daemon instead of three sleeping goroutines.
	m.tickFn = m.lifecycleTick
	now := m.rt.Now()
	m.mu.Lock()
	m.lc.aliveAt = now.Add(m.cfg.AliveInterval)
	m.lc.refreshAt = now.Add(m.cfg.RefreshInterval)
	m.lc.pingAt = now.Add(m.cfg.PingInterval)
	m.lc.aliveTick = 1
	m.armTimerLocked()
	m.mu.Unlock()
	return nil
}

// due reports whether a deadline is set and has arrived.
func due(t, now time.Time) bool { return !t.IsZero() && !t.After(now) }

// armTimerLocked schedules the lifecycle timer for the earliest armed
// deadline, unless a pending timer already fires at or before it.
// Zero deadlines mean the round is in flight (it re-arms on completion).
func (m *MPD) armTimerLocked() {
	next := m.lc.aliveAt
	if !m.lc.refreshAt.IsZero() && (next.IsZero() || m.lc.refreshAt.Before(next)) {
		next = m.lc.refreshAt
	}
	if !m.lc.pingAt.IsZero() && (next.IsZero() || m.lc.pingAt.Before(next)) {
		next = m.lc.pingAt
	}
	if next.IsZero() {
		return
	}
	if !m.lc.timerAt.IsZero() && !m.lc.timerAt.After(next) {
		return // the pending timer already covers it
	}
	m.lc.timerAt = next
	m.rt.Schedule(next.Sub(m.rt.Now()), m.tickFn)
}

// lifecycleTick fires every due round. It runs in event context (no
// actor), so it only spawns: each round executes in its own short-lived
// actor, named like the dedicated loop goroutines it replaced. Due
// rounds fire in the loops' historical start order — alive, refresh,
// ping — which is the event order the old per-loop sleeps produced when
// deadlines collided.
func (m *MPD) lifecycleTick() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.lc.timerAt = time.Time{}
	now := m.rt.Now()
	doAlive, doRefresh, doPing := false, false, false
	aliveTick := 0
	if due(m.lc.aliveAt, now) {
		m.lc.aliveAt = time.Time{}
		aliveTick = m.lc.aliveTick
		m.lc.aliveTick++
		doAlive = true
	}
	if due(m.lc.refreshAt, now) {
		m.lc.refreshAt = time.Time{}
		doRefresh = true
	}
	if due(m.lc.pingAt, now) {
		m.lc.pingAt = time.Time{}
		doPing = true
	}
	m.armTimerLocked()
	m.mu.Unlock()
	if doAlive {
		m.rt.Go("mpd.alive."+m.cfg.Self.ID, func() { m.aliveRound(aliveTick) })
	}
	if doRefresh {
		m.rt.Go("mpd.refresh."+m.cfg.Self.ID, m.refreshRound)
	}
	if doPing {
		m.rt.Go("mpd.ping."+m.cfg.Self.ID, m.pingRoundChained)
	}
}

// Close stops the daemon. Idempotent.
func (m *MPD) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	ln := m.ln
	for _, mb := range m.pendingDone {
		mb.Close()
	}
	m.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	m.rs.Close()
}

// Crash models the host dying under fault injection: every hosted job
// is dropped without a completion report (the submitter must detect the
// silence), and the co-located RS releases all held and running
// reservations as failures — a crash is not a conflict, so the rejected
// counter that feeds conflict rates stays untouched. The daemon object
// itself stays alive: the simulated network already drops the host's
// traffic, and when churn revives the host its listeners answer again,
// modelling a reboot that auto-restarts the middleware (call Reannounce
// to rejoin the overlay promptly).
func (m *MPD) Crash() {
	m.mu.Lock()
	var unstarted []*localJob
	for key, job := range m.jobs {
		job.aborted = true
		if !job.started {
			unstarted = append(unstarted, job)
		}
		delete(m.jobs, key)
	}
	m.mu.Unlock()
	// Started jobs free their MPI endpoints when each process actor
	// finishes; prepared-but-unstarted jobs have no actors, so their
	// pre-bound listeners must be closed here or the ports stay taken
	// across the reboot and every later launch on them fails.
	for _, job := range unstarted {
		for _, e := range job.envs {
			if e.comm != nil {
				e.comm.Close()
			}
		}
	}
	m.rs.FailAll()
}

// Reannounce re-registers with the supernode from a fresh actor — the
// revival path of churn. Without it a rebooted host would stay invisible
// until the alive loop's next full re-registration tick.
func (m *MPD) Reannounce() {
	m.rt.Go("mpd.reannounce."+m.cfg.Self.ID, func() {
		if m.isClosed() {
			return
		}
		m.registerAndUpdate()
	})
}

func (m *MPD) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// aliveRound is one keep-alive tick. Every few ticks, a full
// re-registration instead of a bare keep-alive: it repairs the
// membership after a partition longer than the supernode's TTL (Alive
// alone cannot resurrect an expired entry because it carries only the
// peer ID).
func (m *MPD) aliveRound(tick int) {
	if m.isClosed() {
		return
	}
	if tick%5 == 0 {
		m.registerAndUpdate() // free host-list refresh rides along
	} else {
		m.aliveAny()
	}
	m.mu.Lock()
	if !m.closed {
		m.lc.aliveAt = m.rt.Now().Add(m.cfg.AliveInterval)
		m.armTimerLocked()
	}
	m.mu.Unlock()
}

// refreshRound is one cache refresh.
func (m *MPD) refreshRound() {
	if m.isClosed() {
		return
	}
	m.fetchAndUpdate()
	m.mu.Lock()
	if !m.closed {
		m.lc.refreshAt = m.rt.Now().Add(m.cfg.RefreshInterval)
		m.armTimerLocked()
	}
	m.mu.Unlock()
}

// pingRoundChained is the periodic latency probe round.
func (m *MPD) pingRoundChained() {
	if m.isClosed() {
		return
	}
	m.pingRound()
	m.mu.Lock()
	if !m.closed {
		m.lc.pingAt = m.rt.Now().Add(m.cfg.PingInterval)
		m.armTimerLocked()
	}
	m.mu.Unlock()
}

// supernodes lists the supernode addresses to try, primary (or home
// shard) first. In a federation the order is the home-anchored rotation
// Federation[home], Federation[home+1], ... — deterministic per peer,
// so a failed-over peer always fosters at the same member and ranked
// views stay replayable.
func (m *MPD) supernodes() []string {
	if k := len(m.cfg.Federation); k > 1 {
		home := overlay.ShardAssign(m.cfg.Self.ID, k)
		out := make([]string, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, m.cfg.Federation[(home+i)%k])
		}
		return out
	}
	return append([]string{m.cfg.SupernodeAddr}, m.cfg.SupernodeFallbacks...)
}

// --- RPC robustness: seeded retries and per-supernode breakers ---

// withRetry runs one RPC exchange under the daemon's retry policy:
// retryable failures (transport.Retryable — timeouts and unreachable
// listeners, never "peer gone") back off exponentially with seeded
// jitter and re-try up to RPCRetries times. With RPCRetries == 0 it is
// exactly fn() — no draws, no sleeps — so fault-free trajectories are
// untouched.
func (m *MPD) withRetry(addr string, fn func() error) error {
	err := fn()
	for k := 1; k <= m.cfg.RPCRetries && transport.Retryable(err); k++ {
		m.rt.Sleep(m.retryDelay(addr, k))
		m.mu.Lock()
		m.stats.RPCRetries++
		m.mu.Unlock()
		err = fn()
	}
	return err
}

// retryDelay draws the backoff before re-attempt k (1-based) of an
// exchange with addr: RPCBackoff·2^(k-1) scaled by uniform jitter in
// [0.5, 1.5). Each target address owns an independent SplitMix64
// stream seeded from (daemon seed, addr), so how often one target
// needs retries never moves the jitter another target's retries draw —
// the property that keeps job-plane trajectories identical whatever
// the membership tier's shape.
func (m *MPD) retryDelay(addr string, k int) time.Duration {
	m.mu.Lock()
	if m.retrySeq == nil {
		m.retrySeq = make(map[string]uint64)
	}
	st, ok := m.retrySeq[addr]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(addr))
		st = uint64(m.cfg.Seed) ^ h.Sum64() ^ 0x72747279 // "rtry"
	}
	st, u := splitmixStep(st)
	m.retrySeq[addr] = st
	m.mu.Unlock()
	base := m.cfg.RPCBackoff
	if base <= 0 {
		base = time.Second
	}
	return time.Duration(float64(base<<uint(k-1)) * (0.5 + u))
}

// splitmixStep advances a SplitMix64 state and returns the new state
// plus a uniform draw in [0, 1).
func splitmixStep(x uint64) (uint64, float64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return x, float64(z>>11) / (1 << 53)
}

// snAllow consults the supernode's circuit breaker; a skipped member
// is counted so experiments can meter how much probing the breaker
// saved. Always true when the breaker is disabled.
func (m *MPD) snAllow(sn string) bool {
	if m.cfg.BreakerThreshold <= 0 {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.brkLocked(sn).Allow(m.rt.Now()) {
		return true
	}
	m.stats.BreakerSkips++
	return false
}

// snRecord feeds one supernode exchange outcome into its breaker.
func (m *MPD) snRecord(sn string, err error) {
	if m.cfg.BreakerThreshold <= 0 {
		return
	}
	m.mu.Lock()
	m.brkLocked(sn).Record(m.rt.Now(), err)
	m.mu.Unlock()
}

func (m *MPD) brkLocked(sn string) *transport.Breaker {
	if m.brk == nil {
		m.brk = make(map[string]*transport.Breaker)
	}
	b := m.brk[sn]
	if b == nil {
		b = &transport.Breaker{Threshold: m.cfg.BreakerThreshold, Cooldown: m.cfg.BreakerCooldown}
		m.brk[sn] = b
	}
	return b
}

// peerListPool recycles the scratch slices host-list replies decode
// into: a refresh on a multi-thousand-host world is an O(world) reply,
// and every daemon refreshes, so per-reply slices used to be a top
// allocation source. Each in-flight refresh owns its pooled slice
// exclusively from Get to Put; the cache copies what it keeps, so
// nothing aliases the scratch after the merge.
var peerListPool = sync.Pool{New: func() any { return new([]proto.PeerInfo) }}

// mergeReply decodes a raw PeerList reply into pooled scratch, merges
// it into the cache and releases the frame. The scratch is borrowed
// only for this park-free window — not across the network round trip —
// so however many refreshes are in flight at once, only the handful
// actually decoding at this instant hold a slice.
func (m *MPD) mergeReply(reply transport.Message) error {
	sp := peerListPool.Get().(*[]proto.PeerInfo)
	peers, err := proto.UnmarshalPeerList(reply.Payload, (*sp)[:0])
	reply.Release()
	if err == nil {
		m.cache.Update(peers)
	}
	*sp = peers[:0]
	peerListPool.Put(sp)
	return err
}

// registerAndUpdate registers with the first supernode that delivers a
// decodable host list and merges it into the cache. A supernode that
// answers with garbage counts as failed: the loop falls through to the
// configured fallbacks (the federation's home-anchored rotation), like
// the transport-level failures do. In a federation the first attempt is
// the peer's home shard; later attempts are forced (foster) ones. A
// ShardRedirect answer — the home shard moved, e.g. the peer computed
// it against a stale federation size — is followed once.
func (m *MPD) registerAndUpdate() error {
	var lastErr error
	federated := len(m.cfg.Federation) > 1
	for i, sn := range m.supernodes() {
		if !m.snAllow(sn) {
			continue
		}
		forced := federated && i > 0
		t0 := m.rt.Now()
		var reply transport.Message
		err := m.withRetry(sn, func() error {
			var e error
			reply, e = overlay.RegisterRaw(m.net, sn, m.cfg.Self, forced, m.cfg.ReserveTimeout)
			return e
		})
		m.snRecord(sn, err)
		if err == nil && proto.Peek(reply.Payload) == proto.TShardRedirect {
			var rd proto.ShardRedirect
			decErr := proto.DecodeInto(reply.Payload, &rd)
			reply.Release()
			if decErr == nil && rd.Addr != "" && rd.Addr != sn {
				m.mu.Lock()
				m.stats.SNRedirects++
				m.mu.Unlock()
				reply, err = overlay.RegisterRaw(m.net, rd.Addr, m.cfg.Self, false, m.cfg.ReserveTimeout)
			} else {
				err = fmt.Errorf("mpd: unusable shard redirect from %s", sn)
			}
		}
		if err == nil {
			rtt := m.rt.Now().Sub(t0)
			if err = m.mergeReply(reply); err == nil {
				m.mu.Lock()
				m.stats.Registrations++
				m.stats.RegNanos += int64(rtt)
				if forced {
					m.stats.SNFailovers++
				}
				m.mu.Unlock()
				return nil
			}
		}
		lastErr = err
	}
	return lastErr
}

// fetchAndUpdate refreshes the cache from the first supernode that
// delivers a decodable host list (see registerAndUpdate).
func (m *MPD) fetchAndUpdate() error {
	var lastErr error
	for _, sn := range m.supernodes() {
		if !m.snAllow(sn) {
			continue
		}
		var reply transport.Message
		err := m.withRetry(sn, func() error {
			var e error
			reply, e = overlay.FetchRaw(m.net, sn, m.cfg.ReserveTimeout)
			return e
		})
		m.snRecord(sn, err)
		if err == nil {
			if err = m.mergeReply(reply); err == nil {
				return nil
			}
		}
		lastErr = err
	}
	return lastErr
}

// aliveAny refreshes the last-seen stamp at the first answering
// supernode; on failure it falls through the configured list so the
// peer stays listed somewhere while the primary is down. An answering
// supernode that does not actually list the peer (its entry expired, or
// it was fostered elsewhere and the home shard just revived) triggers
// an immediate re-registration instead of refreshing a ghost until the
// next full re-register tick.
func (m *MPD) aliveAny() {
	for _, sn := range m.supernodes() {
		if !m.snAllow(sn) {
			continue
		}
		var known bool
		err := m.withRetry(sn, func() error {
			var e error
			known, e = overlay.SendAlive(m.net, sn, m.cfg.Self.ID, m.cfg.ReserveTimeout)
			return e
		})
		m.snRecord(sn, err)
		if err != nil {
			continue
		}
		if !known {
			m.registerAndUpdate()
		}
		return
	}
}

// pingRound measures the RTT to every cached peer concurrently using the
// application-level echo of §4.1 (never ICMP).
func (m *MPD) pingRound() {
	ids := m.cache.IDs()
	if len(ids) == 0 {
		return
	}
	mb := m.rt.NewMailbox()
	for _, id := range ids {
		id := id
		info, ok := m.cache.Peer(id)
		if !ok {
			mb.Push(struct{}{})
			continue
		}
		m.rt.Go("mpd.ping1."+m.cfg.Self.ID, func() {
			defer mb.Push(struct{}{})
			nonce := m.nextNonce()
			t0 := m.rt.Now()
			reply, err := transport.RequestReply(m.net, info.MPDAddr,
				transport.Message{Payload: proto.MustMarshal(&proto.Ping{Nonce: nonce})},
				m.cfg.ReserveTimeout)
			if err != nil {
				return
			}
			var pong proto.Pong
			err = proto.DecodeInto(reply.Payload, &pong)
			reply.Release()
			if err == nil && pong.Nonce == nonce {
				m.cache.Observe(id, m.rt.Now().Sub(t0))
			}
		})
		m.mu.Lock()
		m.stats.PingsSent++
		m.mu.Unlock()
	}
	for range ids {
		mb.PopTimeout(2*m.cfg.ReserveTimeout + 15*time.Second)
	}
}

// rngLocked returns the daemon's seeded generator, building it on first
// draw (m.mu must be held). The same seed yields the same stream
// whenever it is first used, so laziness is invisible to replay.
func (m *MPD) rngLocked() *rand.Rand {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(m.cfg.Seed ^ int64(len(m.cfg.Self.ID))))
	}
	return m.rng
}

func (m *MPD) nextNonce() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rngLocked().Uint64()
}

func (m *MPD) newKey() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	rng := m.rngLocked()
	return fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
}

// mathCeil avoids importing math for one call site elsewhere.
func mathCeil(v float64) int { return int(math.Ceil(v)) }
