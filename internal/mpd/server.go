package mpd

import (
	"fmt"
	"strings"

	"p2pmpi/internal/mpi"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
)

func (m *MPD) acceptLoop() {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.rt.Go("mpd.conn."+m.cfg.Self.ID, func() { m.serveConn(c) })
	}
}

// serveConn answers one connection's request/reply exchanges. The two
// periodic message kinds — latency probes and the failure detector's
// job heartbeats — are decoded into per-connection structs and answered
// from a per-connection scratch frame, so the steady-state probe load
// of a large world allocates nothing per exchange; the frames
// themselves are released back to the transport once decoded.
func (m *MPD) serveConn(c transport.Conn) {
	defer c.Close()
	var (
		scratch []byte
		ping    proto.Ping
		pong    proto.Pong
		jping   proto.JobPing
		jpong   proto.JobPong
	)
	for {
		msg, err := c.Recv()
		if err != nil {
			return
		}
		switch proto.Peek(msg.Payload) {
		case proto.TPing:
			err := proto.DecodeInto(msg.Payload, &ping)
			msg.Release()
			if err != nil {
				return
			}
			m.mu.Lock()
			m.stats.PingsAnswered++
			m.mu.Unlock()
			pong.Nonce = ping.Nonce
			scratch, _ = proto.AppendMarshal(scratch[:0], &pong)
		case proto.TJobPing:
			err := proto.DecodeInto(msg.Payload, &jping)
			msg.Release()
			if err != nil {
				return
			}
			jpong.Nonce = jping.Nonce
			jpong.Known = m.hostsJob(jping.JobID)
			scratch, _ = proto.AppendMarshal(scratch[:0], &jpong)
		default:
			_, req, err := proto.Unmarshal(msg.Payload)
			msg.Release()
			if err != nil {
				return
			}
			var reply any
			switch r := req.(type) {
			case *proto.Prepare:
				reply = m.handlePrepare(r)
			case *proto.Start:
				reply = m.handleStart(r)
			case *proto.Cancel:
				m.abortUnstarted(r.Key)
				reply = &proto.CancelAck{Key: r.Key}
			case *proto.KillJob:
				m.handleKill(r.Key)
				reply = &proto.KillAck{Key: r.Key}
			case *proto.JobDone:
				m.handleJobDone(r)
				continue // one-way
			default:
				return
			}
			scratch, err = proto.AppendMarshal(scratch[:0], reply)
			if err != nil {
				return
			}
		}
		if err := c.Send(transport.Message{Payload: scratch}); err != nil {
			return
		}
	}
}

// handlePrepare is §4.2 step 7 (the remote side of the launch): verify
// the hash key against the local RS, enforce the gatekeeper limits, and
// pre-bind every local process's MPI endpoint so that the submitter's
// Start can assume all listeners exist.
func (m *MPD) handlePrepare(p *proto.Prepare) *proto.Ready {
	nok := func(format string, args ...any) *proto.Ready {
		return &proto.Ready{Key: p.Key, OK: false, Reason: fmt.Sprintf(format, args...)}
	}
	// Idempotency: a duplicate Prepare for a job already prepared here —
	// a network-duplicated frame, or a submitter retry whose first Ready
	// was lost — re-acks OK. Checked before key validation, because the
	// first Prepare consumed the reservation and re-validating would
	// wrongly fail the retry of a launch that actually succeeded.
	m.mu.Lock()
	if m.jobs[p.Key] != nil {
		m.mu.Unlock()
		return &proto.Ready{Key: p.Key, OK: true}
	}
	m.mu.Unlock()
	if !m.rs.ValidateKey(p.Key) {
		return nok("unknown or expired reservation key")
	}
	program, ok := m.cfg.Programs[p.Program]
	if !ok {
		return nok("program %q not in registry", p.Program)
	}

	// Collect this host's slots from the table.
	var local []mpi.Slot
	table := make([]mpi.Slot, 0, len(p.Table))
	for _, s := range p.Table {
		ms := mpi.Slot{Rank: s.Rank, Replica: s.Replica, Global: s.Global,
			HostID: s.HostID, Addr: s.Addr}
		table = append(table, ms)
		if s.HostID == m.cfg.Self.ID {
			local = append(local, ms)
		}
	}
	if len(local) == 0 {
		return nok("no slots for this host in the table")
	}
	if len(local) > m.cfg.P {
		return nok("gatekeeper: %d slots exceed owner limit P=%d", len(local), m.cfg.P)
	}

	if err := m.rs.Consume(p.Key); err != nil {
		return nok("consume: %v", err)
	}

	job := &localJob{key: p.Key, jobID: p.JobID, prep: p, program: program}
	for _, slot := range local {
		env := &Env{
			Rank: slot.Rank, Size: p.N, Replica: slot.Replica, R: p.R,
			Slot: slot, Table: table,
			HostID: m.cfg.Self.ID, CoLocated: len(local),
			Args: p.Args, RT: m.rt, Net: m.net,
			Profile: m.cfg.Profile,
		}
		if p.Preemptable {
			env.kill = m.rt.NewMailbox()
		}
		env.algs = unpackAlgorithms(p.Algorithms)
		comm, err := mpi.Join(mpi.Config{
			Self: slot, Slots: table, N: p.N, R: p.R,
			Net: m.net, RT: m.rt,
			Algorithms: env.algs,
		})
		env.comm, env.joinErr = comm, err
		if err != nil {
			// Unwind: close what we already bound, free the reservation.
			for _, e := range job.envs {
				if e.comm != nil {
					e.comm.Close()
				}
			}
			m.rs.Release(p.Key)
			return nok("join slot g%d: %v", slot.Global, err)
		}
		job.envs = append(job.envs, env)
	}

	m.mu.Lock()
	if m.jobs == nil {
		m.jobs = make(map[string]*localJob)
	}
	m.jobs[p.Key] = job
	m.stats.JobsHosted++
	m.mu.Unlock()
	return &proto.Ready{Key: p.Key, OK: true}
}

// abortUnstarted drops a prepared-but-unstarted job: the submitter is
// unwinding a launch whose fan-out partially failed (a co-reserved host
// died between Acquire and Prepare). Without this, a host that already
// Consumed its reservation into a running application would leak its J
// slot forever — under churn, every failed launch would permanently
// shrink the platform. Started jobs are left alone: Start wins the
// race and the normal completion path releases the slot.
func (m *MPD) abortUnstarted(key string) {
	m.mu.Lock()
	job := m.jobs[key]
	if job == nil || job.started {
		m.mu.Unlock()
		return
	}
	delete(m.jobs, key)
	m.mu.Unlock()
	for _, e := range job.envs {
		if e.comm != nil {
			e.comm.Close()
		}
	}
	m.rs.Release(key)
}

// handleStart is phase two: actually run the program on every local slot.
func (m *MPD) handleStart(s *proto.Start) *proto.StartAck {
	m.mu.Lock()
	job := m.jobs[s.Key]
	if job != nil && !job.started {
		job.started = true
		m.mu.Unlock()
		m.rt.Go("mpd.job."+m.cfg.Self.ID, func() { m.runJob(job) })
		return &proto.StartAck{Key: s.Key}
	}
	m.mu.Unlock()
	return &proto.StartAck{Key: s.Key}
}

// handleKill checkpoint-kills this host's slots of a preemptable job.
// Idempotent by construction: an unknown key — the job already
// finished, the host crashed, or the frame was duplicated — is a no-op
// (the caller acks regardless). A prepared-but-unstarted job unwinds
// exactly like a Cancel; a running one has each local process's kill
// channel closed, so its SleepPreemptible returns ErrPreempted and the
// normal runJob completion path reports the failed slots and releases
// the reservation exactly once.
func (m *MPD) handleKill(key string) {
	m.mu.Lock()
	job := m.jobs[key]
	started := job != nil && job.started
	m.mu.Unlock()
	if job == nil {
		return
	}
	if !started {
		m.abortUnstarted(key)
		return
	}
	for _, e := range job.envs {
		if e.kill != nil {
			e.kill.Close()
		}
	}
}

// runJob executes all local processes, reports JobDone to the submitter
// and releases the reservation.
func (m *MPD) runJob(job *localJob) {
	type outcome struct {
		idx int
		err error
	}
	mb := m.rt.NewMailbox()
	for i, env := range job.envs {
		i, env := i, env
		m.rt.Go(fmt.Sprintf("proc.%s.g%d", m.cfg.Self.ID, env.Slot.Global), func() {
			var err error
			func() {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("program panic: %v", r)
					}
				}()
				err = job.program(env)
			}()
			if env.comm != nil {
				env.comm.Close()
			}
			mb.Push(outcome{idx: i, err: err})
		})
	}

	done := &proto.JobDone{JobID: job.jobID, HostID: m.cfg.Self.ID}
	results := make([]proto.SlotResult, len(job.envs))
	for range job.envs {
		v, ok := mb.Pop()
		if !ok { // mailbox closed: daemon shutting down
			break
		}
		o := v.(outcome)
		env := job.envs[o.idx]
		sr := proto.SlotResult{
			Rank:    env.Rank,
			Replica: env.Replica,
			OK:      o.err == nil,
			Output:  append([]byte(nil), env.Out.Bytes()...),
		}
		if o.err != nil {
			sr.Err = o.err.Error()
		}
		results[o.idx] = sr
	}
	done.Results = results

	// A crash between Start and completion aborts the job: the host was
	// dead while the processes "ran", so it must not report results the
	// submitter's failure detector already wrote off (the host may have
	// been revived meanwhile — a reboot does not resurrect processes).
	// The RS was reset by Crash, so there is nothing to release either.
	m.mu.Lock()
	aborted := job.aborted
	m.mu.Unlock()
	if aborted {
		return
	}

	// Report first, then drop the job: a detector probe racing the
	// completion report must still find the job alive, or the submitter
	// could write off work that was actually delivered.
	// (Fire-and-forget; the submitter times out if we are dead.)
	payload := proto.MustMarshal(done)
	sendDone := func() {
		if c, err := m.net.Dial(job.prep.SubmitterMPD); err == nil {
			c.Send(transport.Message{Payload: payload})
			c.Close()
		}
	}
	sendDone()

	m.rs.Release(job.key)
	m.mu.Lock()
	delete(m.jobs, job.key)
	m.mu.Unlock()

	// JobDone is one-way, so under injected loss the single report can
	// vanish and the submitter writes off a host that delivered. With
	// retries enabled the report is blindly retransmitted on the same
	// backoff schedule — no ack frame, no wire change; the submitter
	// dedups by slot, so extra copies are no-ops.
	if m.cfg.RPCRetries > 0 {
		m.rt.Go("mpd.done."+m.cfg.Self.ID, func() {
			for k := 1; k <= m.cfg.RPCRetries; k++ {
				m.rt.Sleep(m.retryDelay(job.prep.SubmitterMPD, k))
				if m.isClosed() {
					return
				}
				sendDone()
			}
		})
	}
}

// hostsJob reports whether this peer still hosts a live job with the
// given job ID — the answering half of the detector's heartbeat. A
// crash wipes the job table, so a rebooted host truthfully answers
// false even though its transport is reachable again.
func (m *MPD) hostsJob(jobID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, job := range m.jobs {
		if job.jobID == jobID {
			return true
		}
	}
	return false
}

// handleJobDone routes a completion report to the waiting Submit call.
func (m *MPD) handleJobDone(d *proto.JobDone) {
	m.mu.Lock()
	mb := m.pendingDone[d.JobID]
	m.mu.Unlock()
	if mb != nil {
		mb.Push(d)
	}
}

// hostOf extracts the host part of an "host:port" address.
func hostOf(addr string) string {
	if i := strings.LastIndex(addr, ":"); i > 0 {
		return addr[:i]
	}
	return addr
}
