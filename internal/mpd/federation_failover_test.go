package mpd

import (
	"fmt"
	"testing"
	"time"

	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// TestSupernodeDeathMidRegistrationFailsOverOnce: a peer starts
// registering while churn kills its home shard's supernode — the
// register frame is already in flight when the host dies. The peer must
// fail over to the surviving shard exactly once: one forced (foster)
// registration, one entry in the survivor's owned table, one entry in
// every merged host-list answer and in the submitter's ranked view. Run
// under -race in CI, this also exercises the registration/failover path
// for data races against the concurrently gossiping supernodes.
func TestSupernodeDeathMidRegistrationFailsOverOnce(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	hostSite := map[string]string{
		"fsn0": "east", "fsn1": "west", "frontal": "east", "obs": "east",
	}
	// The victim peer: any ID works, its rendezvous home just decides
	// which supernode dies.
	const victim = "px.east"
	hostSite[victim] = "east"
	net := simnet.New(s, &simnet.StaticTopology{HostSite: hostSite, DefLat: 2 * time.Millisecond},
		simnet.Config{Seed: 17, NICBps: 1e9})

	federation := []string{"fsn0:8800", "fsn1:8800"}
	sns := make([]*overlay.Supernode, 2)
	for i := range sns {
		sns[i] = overlay.NewSupernode(s, net.Node(fmt.Sprintf("fsn%d", i)), overlay.SupernodeConfig{
			Addr: federation[i], Shard: i, Federation: federation,
			GossipInterval: 100 * time.Millisecond,
			TTL:            45 * time.Second, SweepInterval: 5 * time.Second,
		})
	}
	home := overlay.ShardAssign(victim, 2)
	survivor := 1 - home

	mk := func(id string, p int) *MPD {
		return New(s, net.Node(id), Config{
			Self: proto.PeerInfo{ID: id, Site: hostSite[id],
				MPDAddr: id + ":9000", RSAddr: id + ":9001"},
			P:    p,
			Seed: int64(len(id)),
			Shared: &Shared{
				Federation:      federation,
				Programs:        programs(),
				PingInterval:    5 * time.Second,
				RefreshInterval: 5 * time.Second,
				ReserveTimeout:  time.Second,
			},
		})
	}
	front := mk("frontal", 0)
	obs := mk("obs", 2)
	px := mk(victim, 2)

	s.Go("main", func() {
		defer func() {
			for _, sn := range sns {
				sn.Close()
			}
			front.Close()
			obs.Close()
			px.Close()
		}()
		for _, sn := range sns {
			if err := sn.Start(); err != nil {
				t.Errorf("supernode start: %v", err)
				return
			}
		}
		if err := front.Start(); err != nil {
			t.Errorf("frontal start: %v", err)
			return
		}
		if err := obs.Start(); err != nil {
			t.Errorf("obs start: %v", err)
			return
		}
		if err := px.Start(); err != nil {
			t.Errorf("px start: %v", err)
			return
		}
		// The register frame needs ~2ms to reach the home supernode;
		// kill the host while it is in flight.
		s.Sleep(500 * time.Microsecond)
		net.FailHost(fmt.Sprintf("fsn%d", home))
		// Timeout (1s) + forced fallback + a couple of refresh/gossip
		// rounds.
		s.Sleep(15 * time.Second)

		if got := px.Stats().SNFailovers; got != 1 {
			t.Errorf("px recorded %d shard failovers, want exactly 1", got)
		}
		owned := 0
		for _, id := range sns[survivor].OwnedIDs() {
			if id == victim {
				owned++
			}
		}
		if owned != 1 {
			t.Errorf("survivor shard owns the victim %d times, want 1", owned)
		}
		inMerged := 0
		for _, p := range sns[survivor].Snapshot() {
			if p.ID == victim {
				inMerged++
			}
		}
		if inMerged != 1 {
			t.Errorf("survivor merged view lists the victim %d times, want 1", inMerged)
		}
		seen := 0
		for _, rp := range front.Cache().Ranked() {
			if rp.Info.ID == victim {
				seen++
			}
		}
		if seen != 1 {
			t.Errorf("submitter ranked view lists the victim %d times, want 1", seen)
		}

		// Revive the home shard: the peer's next full re-registration
		// (every 5th 30s alive tick) drifts it home, the foster entry
		// expires by TTL, and the merged views still hold exactly one
		// entry throughout.
		net.RestoreHost(fmt.Sprintf("fsn%d", home))
		s.Sleep(4 * time.Minute)
		if got := countOwned(sns[home], victim); got != 1 {
			t.Errorf("home shard owns the victim %d times after revival, want 1", got)
		}
		if got := countOwned(sns[survivor], victim); got != 0 {
			t.Errorf("survivor still owns the victim %d times after revival", got)
		}
		for i, sn := range sns {
			inMerged := 0
			for _, p := range sn.Snapshot() {
				if p.ID == victim {
					inMerged++
				}
			}
			if inMerged != 1 {
				t.Errorf("healed shard %d merged view lists the victim %d times, want 1", i, inMerged)
			}
		}
	})
	s.Wait()
}

func countOwned(sn *overlay.Supernode, id string) int {
	n := 0
	for _, o := range sn.OwnedIDs() {
		if o == id {
			n++
		}
	}
	return n
}
