// Package overlay implements the P2P membership layer of P2P-MPI: the
// supernode (the bootstrap entry point that replaced JXTA's RendezVous,
// §3.2) and the MPD-side peer cache with latency bookkeeping (§4.1).
//
// The supernode maintains the host list: peer ID, service addresses and a
// last-seen timestamp refreshed by periodic alive signals. Entries that
// miss alive signals for a TTL are swept out, which is how dead peers
// eventually disappear from the overlay.
package overlay

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// SupernodeConfig tunes the supernode daemon.
type SupernodeConfig struct {
	// Addr is the listen address ("host:port").
	Addr string
	// TTL is how long a peer stays listed without an alive signal.
	TTL time.Duration
	// SweepInterval is how often expired peers are purged.
	SweepInterval time.Duration
	// MaxPeersReturned bounds the host list shipped in Register and
	// FetchPeers replies; 0 (the default) returns the full table, the
	// historical behaviour. On worlds of thousands of hosts an unbounded
	// reply makes every cache refresh an O(world) message — capping it
	// keeps membership traffic flat while the supernode still tracks
	// everyone (PeerCount and the TTL sweep are unaffected). Each reply
	// is a window of the ID-ordered table whose start is drawn from the
	// seeded Seed generator, so a client that keeps refreshing samples
	// independent windows and covers the whole membership regardless of
	// how its fetch cadence interleaves with other clients' (any
	// deterministic cursor stride aliases to a fixed subset whenever
	// clients × stride ≡ 0 mod table size — the steady state of a world
	// where every peer refreshes in lockstep). Replies stay a pure
	// function of (Seed, request sequence), keeping simulated worlds
	// replayable. Submitters accumulate windows across refreshes (the
	// MPD booking step keeps fetching while its cache grows toward the
	// demand), but a cap well above the largest expected n×r×overbook
	// keeps bookings to a single refresh.
	MaxPeersReturned int
	// Seed drives the bounded-reply window draws (used only when
	// MaxPeersReturned > 0).
	Seed int64
}

// Supernode is the bootstrap/membership daemon.
type Supernode struct {
	rt  vtime.Runtime
	net transport.Network
	cfg SupernodeConfig

	mu     sync.Mutex
	peers  map[string]*peerEntry
	ln     transport.Listener
	closed bool
	// rng draws the bounded-reply window starts (MaxPeersReturned > 0).
	rng *rand.Rand
	// listCache memoizes the ID-sorted table; replies on large worlds
	// route every Register/Fetch through it, so it must not re-sort per
	// reply. Invalidated whenever membership or peer info changes.
	listCache []proto.PeerInfo
	listValid bool
}

type peerEntry struct {
	info     proto.PeerInfo
	lastSeen time.Time
}

// NewSupernode creates a supernode daemon (not yet started).
func NewSupernode(rt vtime.Runtime, net transport.Network, cfg SupernodeConfig) *Supernode {
	if cfg.TTL <= 0 {
		cfg.TTL = 90 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.TTL / 3
	}
	return &Supernode{
		rt: rt, net: net, cfg: cfg,
		peers: make(map[string]*peerEntry),
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
	}
}

// Start binds the listener and spawns the accept and sweep loops.
func (s *Supernode) Start() error {
	ln, err := s.net.Listen(s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.rt.Go("supernode.accept", s.acceptLoop)
	s.rt.Go("supernode.sweep", s.sweepLoop)
	return nil
}

// Close stops the daemon. Idempotent.
func (s *Supernode) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Addr returns the bound listen address.
func (s *Supernode) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr()
}

// PeerCount returns the number of currently listed peers.
func (s *Supernode) PeerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// Snapshot returns the current host list (for tests and tooling).
func (s *Supernode) Snapshot() []proto.PeerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]proto.PeerInfo(nil), s.sortedLocked()...)
}

// peerList is the host list as shipped to peers: the full table, or —
// when MaxPeersReturned bounds it — a window over the ID-ordered table
// whose start is drawn from the seeded generator. Independent draws per
// reply mean no client can get pinned to a fixed subset by an unlucky
// congruence between its fetch cadence and the table size; repeated
// refreshes cover the membership with probability approaching one
// (coupon-collector over table/limit windows).
func (s *Supernode) peerList() []proto.PeerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.sortedLocked()
	limit := s.cfg.MaxPeersReturned
	if limit <= 0 || len(list) <= limit {
		return append([]proto.PeerInfo(nil), list...)
	}
	start := s.rng.Intn(len(list))
	out := make([]proto.PeerInfo, 0, limit)
	for i := 0; i < limit; i++ {
		out = append(out, list[(start+i)%len(list)])
	}
	return out
}

// sortedLocked returns the memoized ID-sorted table; the returned slice
// is the cache itself — callers must copy before handing it out.
func (s *Supernode) sortedLocked() []proto.PeerInfo {
	if !s.listValid {
		out := make([]proto.PeerInfo, 0, len(s.peers))
		for _, e := range s.peers {
			out = append(out, e.info)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		s.listCache = out
		s.listValid = true
	}
	return s.listCache
}

func (s *Supernode) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.rt.Go("supernode.conn", func() { s.serveConn(c) })
	}
}

// serveConn answers request/reply exchanges until the peer closes.
func (s *Supernode) serveConn(c transport.Conn) {
	defer c.Close()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		_, req, err := proto.Unmarshal(m.Payload)
		if err != nil {
			return
		}
		var reply any
		switch r := req.(type) {
		case *proto.Register:
			s.register(r.Peer)
			reply = &proto.PeerList{Peers: s.peerList()}
		case *proto.Alive:
			s.touch(r.ID)
			reply = &proto.AliveAck{}
		case *proto.FetchPeers:
			reply = &proto.PeerList{Peers: s.peerList()}
		default:
			return // protocol violation: drop the connection
		}
		if err := c.Send(transport.Message{Payload: proto.MustMarshal(reply)}); err != nil {
			return
		}
	}
}

func (s *Supernode) register(p proto.PeerInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.peers[p.ID]; !ok || old.info != p {
		s.listValid = false
	}
	s.peers[p.ID] = &peerEntry{info: p, lastSeen: s.rt.Now()}
}

func (s *Supernode) touch(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.peers[id]; ok {
		e.lastSeen = s.rt.Now()
	}
}

func (s *Supernode) sweepLoop() {
	for {
		s.rt.Sleep(s.cfg.SweepInterval)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		cutoff := s.rt.Now().Add(-s.cfg.TTL)
		for id, e := range s.peers {
			if e.lastSeen.Before(cutoff) {
				delete(s.peers, id)
				s.listValid = false
			}
		}
		s.mu.Unlock()
	}
}

// Client-side helpers: one-shot exchanges with a supernode.

// RegisterWith announces self to the supernode and returns the host list.
func RegisterWith(net transport.Network, snAddr string, self proto.PeerInfo, timeout time.Duration) ([]proto.PeerInfo, error) {
	reply, err := transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.Register{Peer: self})}, timeout)
	if err != nil {
		return nil, err
	}
	_, msg, err := proto.Unmarshal(reply.Payload)
	if err != nil {
		return nil, err
	}
	pl, ok := msg.(*proto.PeerList)
	if !ok {
		return nil, transport.ErrClosed
	}
	return pl.Peers, nil
}

// FetchFrom retrieves a fresh host list from the supernode.
func FetchFrom(net transport.Network, snAddr string, timeout time.Duration) ([]proto.PeerInfo, error) {
	reply, err := transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.FetchPeers{})}, timeout)
	if err != nil {
		return nil, err
	}
	_, msg, err := proto.Unmarshal(reply.Payload)
	if err != nil {
		return nil, err
	}
	pl, ok := msg.(*proto.PeerList)
	if !ok {
		return nil, transport.ErrClosed
	}
	return pl.Peers, nil
}

// SendAlive refreshes self's last-seen stamp at the supernode.
func SendAlive(net transport.Network, snAddr, selfID string, timeout time.Duration) error {
	_, err := transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.Alive{ID: selfID})}, timeout)
	return err
}
