// Package overlay implements the P2P membership layer of P2P-MPI: the
// supernode (the bootstrap entry point that replaced JXTA's RendezVous,
// §3.2) and the MPD-side peer cache with latency bookkeeping (§4.1).
//
// The supernode maintains the host list: peer ID, service addresses and a
// last-seen timestamp refreshed by periodic alive signals. Entries that
// miss alive signals for a TTL are swept out, which is how dead peers
// eventually disappear from the overlay.
package overlay

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// SupernodeConfig tunes the supernode daemon.
type SupernodeConfig struct {
	// Addr is the listen address ("host:port").
	Addr string
	// TTL is how long a peer stays listed without an alive signal.
	TTL time.Duration
	// SweepInterval is how often expired peers are purged.
	SweepInterval time.Duration
	// MaxPeersReturned bounds the host list shipped in Register and
	// FetchPeers replies; 0 (the default) returns the full table, the
	// historical behaviour. On worlds of thousands of hosts an unbounded
	// reply makes every cache refresh an O(world) message — capping it
	// keeps membership traffic flat while the supernode still tracks
	// everyone (PeerCount and the TTL sweep are unaffected). Each reply
	// is a window of the ID-ordered table whose start is drawn from the
	// seeded Seed generator, so a client that keeps refreshing samples
	// independent windows and covers the whole membership regardless of
	// how its fetch cadence interleaves with other clients' (any
	// deterministic cursor stride aliases to a fixed subset whenever
	// clients × stride ≡ 0 mod table size — the steady state of a world
	// where every peer refreshes in lockstep). Replies stay a pure
	// function of (Seed, request sequence), keeping simulated worlds
	// replayable. Submitters accumulate windows across refreshes (the
	// MPD booking step keeps fetching while its cache grows toward the
	// demand), but a cap well above the largest expected n×r×overbook
	// keeps bookings to a single refresh.
	MaxPeersReturned int
	// Seed drives the bounded-reply window draws (used only when
	// MaxPeersReturned > 0).
	Seed int64
}

// Supernode is the bootstrap/membership daemon.
type Supernode struct {
	rt  vtime.Runtime
	net transport.Network
	cfg SupernodeConfig

	mu     sync.Mutex
	peers  map[string]*peerEntry
	ln     transport.Listener
	closed bool
	// rng draws the bounded-reply window starts (MaxPeersReturned > 0).
	rng *rand.Rand
	// listCache is the ID-sorted table, maintained incrementally: a new
	// peer is spliced in at its sort position, a changed one replaced in
	// place, an expired one removed. The boot storm of a multi-thousand-
	// host world registers every peer once, and replies route through
	// this list — re-sorting it per reply (or even per membership
	// change) used to dominate world boot.
	listCache []proto.PeerInfo
}

type peerEntry struct {
	info     proto.PeerInfo
	lastSeen time.Time
}

// NewSupernode creates a supernode daemon (not yet started).
func NewSupernode(rt vtime.Runtime, net transport.Network, cfg SupernodeConfig) *Supernode {
	if cfg.TTL <= 0 {
		cfg.TTL = 90 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.TTL / 3
	}
	return &Supernode{
		rt: rt, net: net, cfg: cfg,
		peers: make(map[string]*peerEntry),
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
	}
}

// Start binds the listener and spawns the accept and sweep loops.
func (s *Supernode) Start() error {
	ln, err := s.net.Listen(s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.rt.Go("supernode.accept", s.acceptLoop)
	s.rt.Go("supernode.sweep", s.sweepLoop)
	return nil
}

// Close stops the daemon. Idempotent.
func (s *Supernode) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Addr returns the bound listen address.
func (s *Supernode) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr()
}

// PeerCount returns the number of currently listed peers.
func (s *Supernode) PeerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// Snapshot returns the current host list (for tests and tooling).
func (s *Supernode) Snapshot() []proto.PeerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]proto.PeerInfo(nil), s.listCache...)
}

// findLocked locates id in the sorted table: the index where it is (or
// would be inserted) and whether it is present.
func (s *Supernode) findLocked(id string) (int, bool) {
	i := sort.Search(len(s.listCache), func(j int) bool { return s.listCache[j].ID >= id })
	return i, i < len(s.listCache) && s.listCache[i].ID == id
}

// appendPeerListReply encodes the host-list reply straight from the
// sorted table into dst: the full table, or — when MaxPeersReturned
// bounds it — a window whose start is drawn from the seeded generator.
// Independent draws per reply mean no client can get pinned to a fixed
// subset by an unlucky congruence between its fetch cadence and the
// table size; repeated refreshes cover the membership with probability
// approaching one (coupon-collector over table/limit windows).
func (s *Supernode) appendPeerListReply(dst []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.listCache
	start, count := 0, len(list)
	if limit := s.cfg.MaxPeersReturned; limit > 0 && len(list) > limit {
		start = s.rng.Intn(len(list))
		count = limit
	}
	return proto.AppendPeerListFrame(dst, list, start, count)
}

func (s *Supernode) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.rt.Go("supernode.conn", func() { s.serveConn(c) })
	}
}

// serveConn answers request/reply exchanges until the peer closes. The
// reply frame is built in a per-connection scratch buffer (the
// transports copy frames on Send, so it is immediately reusable) and
// request payloads are released back to the delivering transport once
// decoded — steady-state, the membership plane allocates nothing per
// exchange beyond what the table itself retains.
// aliveAckFrame is the constant AliveAck reply; Send copies frames, so
// one shared instance serves every keep-alive.
var aliveAckFrame = proto.MustMarshal(&proto.AliveAck{})

// replyScratchPool recycles host-list reply buffers. Every Register/
// Fetch conn is one-shot (clients dial per exchange), so a per-
// connection scratch would regrow an O(world) buffer per reply; a
// single daemon-wide buffer, on the other hand, races under vtime.Real,
// where serveConn goroutines really do run concurrently. A pooled
// buffer is owned exclusively from Get until after Send returns (both
// transports are done with the frame by then: simnet copies it, TCP
// writes it out synchronously), which is safe in both worlds and keeps
// the amortized growth of the shared buffers.
var replyScratchPool = sync.Pool{New: func() any { return new([]byte) }}

func (s *Supernode) serveConn(c transport.Conn) {
	defer c.Close()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		_, req, err := proto.Unmarshal(m.Payload)
		m.Release()
		if err != nil {
			return
		}
		var frame []byte
		var scratch *[]byte
		switch r := req.(type) {
		case *proto.Register:
			s.register(r.Peer)
			scratch = replyScratchPool.Get().(*[]byte)
			frame = s.appendPeerListReply((*scratch)[:0])
		case *proto.Alive:
			s.touch(r.ID)
			frame = aliveAckFrame
		case *proto.FetchPeers:
			scratch = replyScratchPool.Get().(*[]byte)
			frame = s.appendPeerListReply((*scratch)[:0])
		default:
			return // protocol violation: drop the connection
		}
		err = c.Send(transport.Message{Payload: frame})
		if scratch != nil {
			*scratch = frame[:0]
			replyScratchPool.Put(scratch)
		}
		if err != nil {
			return
		}
	}
}

func (s *Supernode) register(p proto.PeerInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.rt.Now()
	if e, ok := s.peers[p.ID]; ok {
		if e.info != p {
			e.info = p
			if i, found := s.findLocked(p.ID); found {
				s.listCache[i] = p
			}
		}
		e.lastSeen = now
		return
	}
	s.peers[p.ID] = &peerEntry{info: p, lastSeen: now}
	i, _ := s.findLocked(p.ID)
	s.listCache = append(s.listCache, proto.PeerInfo{})
	copy(s.listCache[i+1:], s.listCache[i:])
	s.listCache[i] = p
}

func (s *Supernode) touch(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.peers[id]; ok {
		e.lastSeen = s.rt.Now()
	}
}

func (s *Supernode) sweepLoop() {
	for {
		s.rt.Sleep(s.cfg.SweepInterval)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		cutoff := s.rt.Now().Add(-s.cfg.TTL)
		for id, e := range s.peers {
			if e.lastSeen.Before(cutoff) {
				delete(s.peers, id)
				if i, found := s.findLocked(id); found {
					s.listCache = append(s.listCache[:i], s.listCache[i+1:]...)
				}
			}
		}
		s.mu.Unlock()
	}
}

// Client-side helpers: one-shot exchanges with a supernode.

// RegisterWith announces self to the supernode and returns the host list.
func RegisterWith(net transport.Network, snAddr string, self proto.PeerInfo, timeout time.Duration) ([]proto.PeerInfo, error) {
	return RegisterWithInto(net, snAddr, self, timeout, nil)
}

// RegisterWithInto is RegisterWith appending the host list to dst
// (reusing its capacity) — the form callers with scratch slices use, so
// an O(world) reply does not allocate an O(world) slice per refresh.
func RegisterWithInto(net transport.Network, snAddr string, self proto.PeerInfo, timeout time.Duration, dst []proto.PeerInfo) ([]proto.PeerInfo, error) {
	reply, err := RegisterRaw(net, snAddr, self, timeout)
	if err != nil {
		return dst, err
	}
	out, err := proto.UnmarshalPeerList(reply.Payload, dst)
	reply.Release()
	return out, err
}

// RegisterRaw performs the Register exchange and returns the raw
// PeerList reply frame. The caller decodes it (proto.UnmarshalPeerList)
// and releases the message; deferring the decode lets hot refresh loops
// borrow their scratch only for the decode itself instead of across the
// whole network round trip.
func RegisterRaw(net transport.Network, snAddr string, self proto.PeerInfo, timeout time.Duration) (transport.Message, error) {
	return transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.Register{Peer: self})}, timeout)
}

// FetchFrom retrieves a fresh host list from the supernode.
func FetchFrom(net transport.Network, snAddr string, timeout time.Duration) ([]proto.PeerInfo, error) {
	return FetchFromInto(net, snAddr, timeout, nil)
}

// FetchFromInto is FetchFrom appending into dst (reusing its capacity).
func FetchFromInto(net transport.Network, snAddr string, timeout time.Duration, dst []proto.PeerInfo) ([]proto.PeerInfo, error) {
	reply, err := FetchRaw(net, snAddr, timeout)
	if err != nil {
		return dst, err
	}
	out, err := proto.UnmarshalPeerList(reply.Payload, dst)
	reply.Release()
	return out, err
}

// FetchRaw performs the FetchPeers exchange and returns the raw PeerList
// reply frame; see RegisterRaw for why callers decode it themselves.
func FetchRaw(net transport.Network, snAddr string, timeout time.Duration) (transport.Message, error) {
	return transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.FetchPeers{})}, timeout)
}

// SendAlive refreshes self's last-seen stamp at the supernode.
func SendAlive(net transport.Network, snAddr, selfID string, timeout time.Duration) error {
	reply, err := transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.Alive{ID: selfID})}, timeout)
	if err == nil {
		reply.Release()
	}
	return err
}
