// Package overlay implements the P2P membership layer of P2P-MPI: the
// supernode (the bootstrap entry point that replaced JXTA's RendezVous,
// §3.2) and the MPD-side peer cache with latency bookkeeping (§4.1).
//
// The supernode maintains the host list: peer ID, service addresses and a
// last-seen timestamp refreshed by periodic alive signals. Entries that
// miss alive signals for a TTL are swept out, which is how dead peers
// eventually disappear from the overlay.
package overlay

import (
	"sync"
	"time"

	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// SupernodeConfig tunes the supernode daemon.
type SupernodeConfig struct {
	// Addr is the listen address ("host:port").
	Addr string
	// TTL is how long a peer stays listed without an alive signal.
	TTL time.Duration
	// SweepInterval is how often expired peers are purged.
	SweepInterval time.Duration
}

// Supernode is the bootstrap/membership daemon.
type Supernode struct {
	rt  vtime.Runtime
	net transport.Network
	cfg SupernodeConfig

	mu     sync.Mutex
	peers  map[string]*peerEntry
	ln     transport.Listener
	closed bool
}

type peerEntry struct {
	info     proto.PeerInfo
	lastSeen time.Time
}

// NewSupernode creates a supernode daemon (not yet started).
func NewSupernode(rt vtime.Runtime, net transport.Network, cfg SupernodeConfig) *Supernode {
	if cfg.TTL <= 0 {
		cfg.TTL = 90 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.TTL / 3
	}
	return &Supernode{rt: rt, net: net, cfg: cfg, peers: make(map[string]*peerEntry)}
}

// Start binds the listener and spawns the accept and sweep loops.
func (s *Supernode) Start() error {
	ln, err := s.net.Listen(s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.rt.Go("supernode.accept", s.acceptLoop)
	s.rt.Go("supernode.sweep", s.sweepLoop)
	return nil
}

// Close stops the daemon. Idempotent.
func (s *Supernode) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Addr returns the bound listen address.
func (s *Supernode) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr()
}

// PeerCount returns the number of currently listed peers.
func (s *Supernode) PeerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// Snapshot returns the current host list (for tests and tooling).
func (s *Supernode) Snapshot() []proto.PeerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.listLocked()
}

func (s *Supernode) listLocked() []proto.PeerInfo {
	out := make([]proto.PeerInfo, 0, len(s.peers))
	for _, e := range s.peers {
		out = append(out, e.info)
	}
	// Deterministic order: by peer ID.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *Supernode) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.rt.Go("supernode.conn", func() { s.serveConn(c) })
	}
}

// serveConn answers request/reply exchanges until the peer closes.
func (s *Supernode) serveConn(c transport.Conn) {
	defer c.Close()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		_, req, err := proto.Unmarshal(m.Payload)
		if err != nil {
			return
		}
		var reply any
		switch r := req.(type) {
		case *proto.Register:
			s.register(r.Peer)
			reply = &proto.PeerList{Peers: s.Snapshot()}
		case *proto.Alive:
			s.touch(r.ID)
			reply = &proto.AliveAck{}
		case *proto.FetchPeers:
			reply = &proto.PeerList{Peers: s.Snapshot()}
		default:
			return // protocol violation: drop the connection
		}
		if err := c.Send(transport.Message{Payload: proto.MustMarshal(reply)}); err != nil {
			return
		}
	}
}

func (s *Supernode) register(p proto.PeerInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers[p.ID] = &peerEntry{info: p, lastSeen: s.rt.Now()}
}

func (s *Supernode) touch(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.peers[id]; ok {
		e.lastSeen = s.rt.Now()
	}
}

func (s *Supernode) sweepLoop() {
	for {
		s.rt.Sleep(s.cfg.SweepInterval)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		cutoff := s.rt.Now().Add(-s.cfg.TTL)
		for id, e := range s.peers {
			if e.lastSeen.Before(cutoff) {
				delete(s.peers, id)
			}
		}
		s.mu.Unlock()
	}
}

// Client-side helpers: one-shot exchanges with a supernode.

// RegisterWith announces self to the supernode and returns the host list.
func RegisterWith(net transport.Network, snAddr string, self proto.PeerInfo, timeout time.Duration) ([]proto.PeerInfo, error) {
	reply, err := transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.Register{Peer: self})}, timeout)
	if err != nil {
		return nil, err
	}
	_, msg, err := proto.Unmarshal(reply.Payload)
	if err != nil {
		return nil, err
	}
	pl, ok := msg.(*proto.PeerList)
	if !ok {
		return nil, transport.ErrClosed
	}
	return pl.Peers, nil
}

// FetchFrom retrieves a fresh host list from the supernode.
func FetchFrom(net transport.Network, snAddr string, timeout time.Duration) ([]proto.PeerInfo, error) {
	reply, err := transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.FetchPeers{})}, timeout)
	if err != nil {
		return nil, err
	}
	_, msg, err := proto.Unmarshal(reply.Payload)
	if err != nil {
		return nil, err
	}
	pl, ok := msg.(*proto.PeerList)
	if !ok {
		return nil, transport.ErrClosed
	}
	return pl.Peers, nil
}

// SendAlive refreshes self's last-seen stamp at the supernode.
func SendAlive(net transport.Network, snAddr, selfID string, timeout time.Duration) error {
	_, err := transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.Alive{ID: selfID})}, timeout)
	return err
}
