// Package overlay implements the P2P membership layer of P2P-MPI: the
// supernode (the bootstrap entry point that replaced JXTA's RendezVous,
// §3.2) and the MPD-side peer cache with latency bookkeeping (§4.1).
//
// The supernode maintains the host list: peer ID, service addresses and a
// last-seen timestamp refreshed by periodic alive signals. Entries that
// miss alive signals for a TTL are swept out, which is how dead peers
// eventually disappear from the overlay.
//
// Beyond the paper, supernodes federate: K supernodes each own a shard
// of the membership space (rendezvous hashing on the host ID, see
// ShardAssign) and exchange versioned digests on a gossip cadence so
// that any one member can answer a host-list query with a near-complete
// merged view. A peer registers with its home shard and fails over to a
// foreign shard (a forced "foster" registration) when the home member
// is unreachable; anti-entropy on digest mismatch ships whole shard
// snapshots, so a member that was partitioned or rebooted converges
// back to the federation view within a few gossip rounds.
package overlay

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// SupernodeConfig tunes the supernode daemon.
type SupernodeConfig struct {
	// Addr is the listen address ("host:port").
	Addr string
	// TTL is how long a peer stays listed without an alive signal.
	TTL time.Duration
	// SweepInterval is how often expired peers are purged.
	SweepInterval time.Duration
	// MaxPeersReturned bounds the host list shipped in Register and
	// FetchPeers replies; 0 (the default) returns the full table, the
	// historical behaviour. On worlds of thousands of hosts an unbounded
	// reply makes every cache refresh an O(world) message — capping it
	// keeps membership traffic flat while the supernode still tracks
	// everyone (PeerCount and the TTL sweep are unaffected). Each reply
	// is a window of the ID-ordered table whose start is drawn from the
	// seeded Seed generator, so a client that keeps refreshing samples
	// independent windows and covers the whole membership regardless of
	// how its fetch cadence interleaves with other clients' (any
	// deterministic cursor stride aliases to a fixed subset whenever
	// clients × stride ≡ 0 mod table size — the steady state of a world
	// where every peer refreshes in lockstep). Replies stay a pure
	// function of (Seed, request sequence), keeping simulated worlds
	// replayable. Submitters accumulate windows across refreshes (the
	// MPD booking step keeps fetching while its cache grows toward the
	// demand), but a cap well above the largest expected n×r×overbook
	// keeps bookings to a single refresh.
	MaxPeersReturned int
	// Seed drives the bounded-reply window draws (used only when
	// MaxPeersReturned > 0).
	Seed int64

	// Shard is this member's index in the federation (0 ≤ Shard < K).
	Shard int
	// Federation lists every member's listen address in shard order.
	// Empty or single-entry runs the historical standalone mode: no
	// gossip, no redirects, every registration accepted.
	Federation []string
	// GossipInterval is the digest-exchange period between federation
	// members (default 250ms of simulated/real time). Each tick the
	// member pulls from the next peer in a deterministic rotation;
	// because replies forward every shard the replier knows (not just
	// its own), the federation view spreads transitively and a K-member
	// federation converges in O(log K) rounds.
	GossipInterval time.Duration

	// Intern, when set, canonicalizes PeerInfo values and converged
	// snapshot/merged slices across the whole deployment (share one per
	// world). Purely a memory optimization: interning only ever swaps a
	// value for an equal one, so behaviour and replay are untouched.
	Intern *Interner
}

// federated reports whether the config describes a multi-member tier.
func (c *SupernodeConfig) federated() bool { return len(c.Federation) > 1 }

// SupernodeStats counts membership-plane work for experiments and tests.
type SupernodeStats struct {
	// BytesIn / BytesOut cover every served exchange (register, alive,
	// fetch and gossip), request and reply frame payloads.
	BytesIn, BytesOut int64
	// GossipExchanges counts completed digest round trips this member
	// initiated; GossipBytesIn/Out their frame payload totals from the
	// initiator's side. The replying member charges the same frames to
	// its own BytesIn/BytesOut (it serves the exchange), so summing
	// BytesIn+BytesOut across the federation counts every frame exactly
	// once.
	GossipExchanges               int64
	GossipBytesIn, GossipBytesOut int64
	// Fostered counts forced registrations accepted for hosts whose
	// home is another shard; Redirects counts unforced registrations
	// bounced toward their home shard.
	Fostered, Redirects int64
	// StaleSamples/StaleSumNS/StaleMaxNS measure gossip propagation lag:
	// each applied snapshot contributes (apply time − version creation
	// stamp). This is the measured bound on how stale a merged host-list
	// answer can be about another shard's membership.
	StaleSamples           int64
	StaleSumNS, StaleMaxNS int64
}

// MeanStaleness returns the average snapshot propagation lag.
func (s SupernodeStats) MeanStaleness() time.Duration {
	if s.StaleSamples == 0 {
		return 0
	}
	return time.Duration(s.StaleSumNS / s.StaleSamples)
}

// remoteShard is this member's snapshot of another member's owned set.
type remoteShard struct {
	version   uint64
	stamp     int64 // owner's version-creation instant (unix nanos)
	peers     []proto.PeerInfo
	seen      []int64
	appliedAt time.Time // when this snapshot landed here (liveness anchor)
}

// entryMeta attributes one merged-view entry to the shard snapshot it
// came from, with its last-seen stamp for failover tie-breaking. Kept
// in a slice parallel to the ID-sorted merged view: the entry for
// merged[i] is meta[i], located by the same binary search. (A
// map[string]entryMeta here costs ~5× the slice's 16 bytes/entry in
// map overhead — at a million hosts across K members, hundreds of MB
// for data the merge already keeps sorted.)
type entryMeta struct {
	shard int
	seen  int64
}

// Supernode is the bootstrap/membership daemon — standalone, or one
// member of a federated tier.
type Supernode struct {
	rt  vtime.Runtime
	net transport.Network
	cfg SupernodeConfig

	mu     sync.Mutex
	peers  map[string]*peerEntry
	ln     transport.Listener
	closed bool
	// rng draws the bounded-reply window starts (MaxPeersReturned > 0);
	// built on first draw — an eager rand.Rand is ~5 KB of state a
	// standalone or unbounded member never touches, and the same seed
	// produces the same stream whenever it is first used.
	rng *rand.Rand
	// listCache is the ID-sorted owned table, maintained incrementally: a
	// new peer is spliced in at its sort position, a changed one replaced
	// in place, an expired one removed. The boot storm of a multi-
	// thousand-host world registers every peer once, and standalone
	// replies route through this list — re-sorting it per reply (or even
	// per membership change) used to dominate world boot.
	listCache []proto.PeerInfo

	// Federation state. ownVersion/ownStamp version the owned set (bumped
	// on add/remove/info-change, NOT on bare keep-alives); remote holds
	// the freshest snapshot gossip delivered for every other shard;
	// merged is the ID-sorted union the replies are encoded from, with
	// meta attributing each entry to its source shard. Standalone mode
	// leaves all of this nil and serves straight from listCache.
	ownVersion uint64
	ownStamp   int64
	remote     map[int]*remoteShard
	merged     []proto.PeerInfo
	meta       []entryMeta // parallel to merged; see entryMeta
	// mergedShared marks merged as possibly aliased by other members
	// (adopted from, or published to, the interner's shared view); any
	// in-place edit must copy first (cowMergedLocked).
	mergedShared bool
	// memberSeen records the last direct evidence that a federation
	// member is alive (it answered our digest, or it sent us one). A
	// member silent past the TTL has its snapshot swept — otherwise a
	// permanently dead shard's peers would be served in merged replies
	// forever, breaking the package's TTL contract.
	memberSeen map[int]time.Time
	stats      SupernodeStats
}

type peerEntry struct {
	info     proto.PeerInfo
	lastSeen time.Time
}

// NewSupernode creates a supernode daemon (not yet started).
func NewSupernode(rt vtime.Runtime, net transport.Network, cfg SupernodeConfig) *Supernode {
	if cfg.TTL <= 0 {
		cfg.TTL = 90 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.TTL / 3
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 250 * time.Millisecond
	}
	s := &Supernode{
		rt: rt, net: net, cfg: cfg,
		peers: make(map[string]*peerEntry),
	}
	if cfg.federated() {
		s.remote = make(map[int]*remoteShard)
		s.memberSeen = make(map[int]time.Time)
	}
	return s
}

// rngLocked returns the window-draw generator, building it on first use
// (s.mu must be held).
func (s *Supernode) rngLocked() *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.cfg.Seed ^ 0x5eed))
	}
	return s.rng
}

// Start binds the listener and spawns the accept, sweep and (in a
// federation) gossip loops.
func (s *Supernode) Start() error {
	ln, err := s.net.Listen(s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.rt.Go("supernode.accept", s.acceptLoop)
	s.rt.Go("supernode.sweep", s.sweepLoop)
	if s.cfg.federated() {
		s.rt.Go("supernode.gossip", s.gossipLoop)
	}
	return nil
}

// Close stops the daemon. Idempotent.
func (s *Supernode) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Addr returns the bound listen address.
func (s *Supernode) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr()
}

// Shard returns this member's shard index (0 when standalone).
func (s *Supernode) Shard() int { return s.cfg.Shard }

// PeerCount returns the number of peers registered directly with this
// member (its owned shard; the full table when standalone).
func (s *Supernode) PeerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// MergedCount returns the number of distinct peers in this member's
// federation view (equal to PeerCount when standalone).
func (s *Supernode) MergedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.replyListLocked())
}

// Stats returns a copy of the membership-plane counters.
func (s *Supernode) Stats() SupernodeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// OwnedIDs returns the IDs registered directly with this member, sorted
// (tests and tooling).
func (s *Supernode) OwnedIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.listCache))
	for i := range s.listCache {
		out = append(out, s.listCache[i].ID)
	}
	return out
}

// Snapshot returns the current host list — the merged federation view —
// for tests and tooling.
func (s *Supernode) Snapshot() []proto.PeerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]proto.PeerInfo(nil), s.replyListLocked()...)
}

// replyListLocked is the table replies encode from: the merged view in
// a federation, the owned table standalone.
func (s *Supernode) replyListLocked() []proto.PeerInfo {
	if s.cfg.federated() {
		return s.merged
	}
	return s.listCache
}

// findSorted locates id in a sorted table: the index where it is (or
// would be inserted) and whether it is present.
func findSorted(list []proto.PeerInfo, id string) (int, bool) {
	i := sort.Search(len(list), func(j int) bool { return list[j].ID >= id })
	return i, i < len(list) && list[i].ID == id
}

// spliceIn inserts v at index i (from findSorted), shifting the tail.
func spliceIn[T any](list []T, i int, v T) []T {
	var zero T
	list = append(list, zero)
	copy(list[i+1:], list[i:])
	list[i] = v
	return list
}

// spliceOut removes index i.
func spliceOut[T any](list []T, i int) []T {
	return append(list[:i], list[i+1:]...)
}

// appendPeerListReply encodes the host-list reply straight from the
// sorted table into dst: the full table, or — when MaxPeersReturned
// bounds it — a window whose start is drawn from the seeded generator.
// Independent draws per reply mean no client can get pinned to a fixed
// subset by an unlucky congruence between its fetch cadence and the
// table size; repeated refreshes cover the membership with probability
// approaching one (coupon-collector over table/limit windows).
func (s *Supernode) appendPeerListReply(dst []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.replyListLocked()
	start, count := 0, len(list)
	if limit := s.cfg.MaxPeersReturned; limit > 0 && len(list) > limit {
		start = s.rngLocked().Intn(len(list))
		count = limit
	}
	return proto.AppendPeerListFrame(dst, list, start, count)
}

func (s *Supernode) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.rt.Go("supernode.conn", func() { s.serveConn(c) })
	}
}

// serveConn answers request/reply exchanges until the peer closes. The
// reply frame is built in a per-connection scratch buffer (the
// transports copy frames on Send, so it is immediately reusable) and
// request payloads are released back to the delivering transport once
// decoded — steady-state, the membership plane allocates nothing per
// exchange beyond what the table itself retains.
// aliveAck{Known,Unknown}Frame are the two constant AliveAck replies;
// Send copies frames, so shared instances serve every keep-alive.
var (
	aliveAckKnownFrame   = proto.MustMarshal(&proto.AliveAck{Known: true})
	aliveAckUnknownFrame = proto.MustMarshal(&proto.AliveAck{})
)

// replyScratchPool recycles host-list reply buffers. Every Register/
// Fetch conn is one-shot (clients dial per exchange), so a per-
// connection scratch would regrow an O(world) buffer per reply; a
// single daemon-wide buffer, on the other hand, races under vtime.Real,
// where serveConn goroutines really do run concurrently. A pooled
// buffer is owned exclusively from Get until after Send returns (both
// transports are done with the frame by then: simnet copies it, TCP
// writes it out synchronously), which is safe in both worlds and keeps
// the amortized growth of the shared buffers.
var replyScratchPool = sync.Pool{New: func() any { return new([]byte) }}

func (s *Supernode) serveConn(c transport.Conn) {
	defer c.Close()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		reqLen := int64(len(m.Payload))
		_, req, err := proto.Unmarshal(m.Payload)
		m.Release()
		if err != nil {
			return
		}
		var frame []byte
		var scratch *[]byte
		switch r := req.(type) {
		case *proto.Register:
			if s.cfg.federated() {
				if home := ShardAssign(r.Peer.ID, len(s.cfg.Federation)); home != s.cfg.Shard {
					if !r.Forced {
						s.mu.Lock()
						s.stats.Redirects++
						s.mu.Unlock()
						scratch = replyScratchPool.Get().(*[]byte)
						frame, _ = proto.AppendMarshal((*scratch)[:0],
							&proto.ShardRedirect{Shard: home, Addr: s.cfg.Federation[home]})
						break
					}
					s.mu.Lock()
					s.stats.Fostered++
					s.mu.Unlock()
				}
			}
			s.register(r.Peer)
			scratch = replyScratchPool.Get().(*[]byte)
			frame = s.appendPeerListReply((*scratch)[:0])
		case *proto.Alive:
			if s.touch(r.ID) {
				frame = aliveAckKnownFrame
			} else {
				frame = aliveAckUnknownFrame
			}
		case *proto.FetchPeers:
			scratch = replyScratchPool.Get().(*[]byte)
			frame = s.appendPeerListReply((*scratch)[:0])
		case *proto.Digest:
			scratch = replyScratchPool.Get().(*[]byte)
			frame = s.appendDeltaReply((*scratch)[:0], r)
		default:
			return // protocol violation: drop the connection
		}
		err = c.Send(transport.Message{Payload: frame})
		s.mu.Lock()
		s.stats.BytesIn += reqLen
		s.stats.BytesOut += int64(len(frame))
		s.mu.Unlock()
		if scratch != nil {
			*scratch = frame[:0]
			replyScratchPool.Put(scratch)
		}
		if err != nil {
			return
		}
	}
}

func (s *Supernode) register(p proto.PeerInfo) {
	p = s.cfg.Intern.PeerInfo(p) // share the decode with the whole world
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.rt.Now()
	if e, ok := s.peers[p.ID]; ok {
		if e.info != p {
			e.info = p
			if i, found := findSorted(s.listCache, p.ID); found {
				s.listCache[i] = p
			}
			s.bumpVersionLocked(now)
			if s.cfg.federated() {
				s.mergedUpsertLocked(p, s.cfg.Shard, now.UnixNano())
			}
		} else if s.cfg.federated() {
			// Info unchanged, but the stamp refresh matters: it is what
			// lets a re-homed registration win the failover tie-break
			// against a stale foster copy in another shard's snapshot.
			s.mergedUpsertLocked(p, s.cfg.Shard, now.UnixNano())
		}
		e.lastSeen = now
		return
	}
	s.peers[p.ID] = &peerEntry{info: p, lastSeen: now}
	i, _ := findSorted(s.listCache, p.ID)
	s.listCache = spliceIn(s.listCache, i, p)
	s.bumpVersionLocked(now)
	if s.cfg.federated() {
		s.mergedUpsertLocked(p, s.cfg.Shard, now.UnixNano())
	}
}

// touch refreshes a peer's last-seen stamp, reporting whether the peer
// is actually listed here.
func (s *Supernode) touch(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.peers[id]
	if ok {
		e.lastSeen = s.rt.Now()
		if s.cfg.federated() {
			// meta is never aliased between members (only merged is), so
			// the stamp refresh can write in place.
			if i, found := findSorted(s.merged, id); found && s.meta[i].shard == s.cfg.Shard {
				s.meta[i].seen = e.lastSeen.UnixNano()
			}
		}
	}
	return ok
}

// bumpVersionLocked advances the owned-set version and stamps the
// instant, the quantity gossip digests compare.
func (s *Supernode) bumpVersionLocked(now time.Time) {
	s.ownVersion++
	s.ownStamp = now.UnixNano()
}

// cowMergedLocked unshares the merged view before an in-place edit: an
// adopted (or published) slice may be aliased by every other federation
// member. The copy is exact-length, so a later spliceIn reallocates
// instead of growing into shared backing.
func (s *Supernode) cowMergedLocked() {
	if s.mergedShared {
		s.merged = append([]proto.PeerInfo(nil), s.merged...)
		s.mergedShared = false
	}
}

// mergedUpsertLocked inserts or refreshes one entry of the merged view,
// attributed to the given shard. A fresher last-seen stamp wins a
// conflict; ties go to the lower shard index so replays are exact.
func (s *Supernode) mergedUpsertLocked(p proto.PeerInfo, shard int, seen int64) {
	i, found := findSorted(s.merged, p.ID)
	if found {
		m := s.meta[i]
		if m.shard != shard && (m.seen > seen || (m.seen == seen && m.shard < shard)) {
			return // the other shard's claim is fresher
		}
		if s.merged[i] != p {
			s.cowMergedLocked()
			s.merged[i] = p
		}
		s.meta[i] = entryMeta{shard: shard, seen: seen}
		return
	}
	s.cowMergedLocked()
	s.merged = spliceIn(s.merged, i, p)
	s.meta = spliceIn(s.meta, i, entryMeta{shard: shard, seen: seen})
}

// mergedDropLocked removes an entry attributed to the given shard from
// the merged view; if another shard's snapshot still lists the host,
// the freshest surviving claim is reinstated so an owned expiry cannot
// erase a peer the federation still believes in.
func (s *Supernode) mergedDropLocked(id string, shard int) {
	i, found := findSorted(s.merged, id)
	if !found || s.meta[i].shard != shard {
		return
	}
	s.cowMergedLocked()
	s.merged = spliceOut(s.merged, i)
	s.meta = spliceOut(s.meta, i)
	s.reinstateLocked(id, shard)
}

func (s *Supernode) sweepLoop() {
	for {
		s.rt.Sleep(s.cfg.SweepInterval)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		now := s.rt.Now()
		cutoff := now.Add(-s.cfg.TTL)
		for id, e := range s.peers {
			if e.lastSeen.Before(cutoff) {
				delete(s.peers, id)
				if i, found := findSorted(s.listCache, id); found {
					s.listCache = spliceOut(s.listCache, i)
				}
				s.bumpVersionLocked(now)
				if s.cfg.federated() {
					s.mergedDropLocked(id, s.cfg.Shard)
				}
			}
		}
		// A federation member silent past the TTL (no digest served, no
		// digest answered — its snapshot's arrival anchors a member we
		// only ever learned about transitively) gets its shard swept
		// from the merged view: a permanently dead shard must not keep
		// its expired peers listed forever. Peers that failed over are
		// owned elsewhere by now and survive via reinstatement.
		for k, r := range s.remote {
			anchor := s.memberSeen[k]
			if anchor.IsZero() || r.appliedAt.After(anchor) {
				anchor = r.appliedAt
			}
			if anchor.Before(cutoff) {
				delete(s.remote, k)
				delete(s.memberSeen, k)
				for _, p := range r.peers {
					s.mergedDropLocked(p.ID, k)
				}
			}
		}
		s.mu.Unlock()
	}
}

// --- Gossip: digest exchange and anti-entropy ---

// gossipLoop pulls from the next federation member in a deterministic
// rotation every GossipInterval. Pull replies carry every shard the
// replier knows, so information spreads transitively (O(log K) rounds
// to converge) even though each member contacts one peer per tick.
func (s *Supernode) gossipLoop() {
	k := len(s.cfg.Federation)
	for tick := 0; ; tick++ {
		s.rt.Sleep(s.cfg.GossipInterval)
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		s.gossipWith((s.cfg.Shard + 1 + tick%(k-1)) % k)
	}
}

// gossipScratchPool recycles digest request frames (the version vector
// is a fresh small slice per tick — one allocation every
// GossipInterval, nowhere near a hot path).
var gossipScratchPool = sync.Pool{New: func() any { return new([]byte) }}

// gossipWith runs one digest round trip against the member at the
// given shard index and applies whatever snapshots come back.
func (s *Supernode) gossipWith(shard int) {
	addr := s.cfg.Federation[shard]
	k := len(s.cfg.Federation)
	versions := make([]uint64, k)
	s.mu.Lock()
	s.knownVersionsLocked(versions)
	from := s.cfg.Shard
	s.mu.Unlock()

	scratch := gossipScratchPool.Get().(*[]byte)
	frame, err := proto.AppendMarshal((*scratch)[:0], &proto.Digest{From: from, Versions: versions})
	if err != nil {
		return
	}
	sent := int64(len(frame))
	reply, err := transport.RequestReply(s.net, addr,
		transport.Message{Payload: frame}, s.cfg.GossipInterval*4)
	*scratch = frame[:0]
	gossipScratchPool.Put(scratch)
	if err != nil {
		return
	}
	got := int64(len(reply.Payload))
	_, msg, err := proto.Unmarshal(reply.Payload)
	reply.Release()
	if err != nil {
		return
	}
	delta, ok := msg.(*proto.ShardDelta)
	if !ok {
		return
	}
	s.mu.Lock()
	s.stats.GossipExchanges++
	s.stats.GossipBytesOut += sent
	s.stats.GossipBytesIn += got
	// The replying member's serveConn already charges both frames to its
	// BytesIn/BytesOut — charging them here too would double-count every
	// gossip exchange in federation-wide sums (exp.World.FederationStats).
	s.memberSeen[shard] = s.rt.Now()
	for i := range delta.Shards {
		s.applyShardLocked(&delta.Shards[i])
	}
	if len(delta.Shards) == 0 && !s.mergedShared {
		// Quiescent round while holding a private merged view: the last
		// edit was an own-shard change applied copy-on-write, which never
		// re-offers. Without this, every member's final boot-storm
		// registration leaves it a permanent private O(world) copy — K
		// copies of the world instead of one. Offering here converges
		// the federation back to a single shared slice; content equality
		// is what MergedView checks, so a not-yet-converged offer is
		// merely stored, never wrongly adopted.
		s.merged = s.cfg.Intern.MergedView(s.merged)
		s.mergedShared = s.cfg.Intern != nil
	}
	s.mu.Unlock()
}

// KnownVersions returns the freshest version this member knows per
// federation shard, or nil when standalone. Element-wise equality of
// every member's vector is the anti-entropy convergence predicate: the
// healing watcher of the nemesis experiments polls it to timestamp the
// instant a split federation has re-converged.
func (s *Supernode) KnownVersions() []uint64 {
	if !s.cfg.federated() {
		return nil
	}
	v := make([]uint64, len(s.cfg.Federation))
	s.mu.Lock()
	s.knownVersionsLocked(v)
	s.mu.Unlock()
	return v
}

// knownVersionsLocked fills v with the freshest version this member
// knows per shard.
func (s *Supernode) knownVersionsLocked(v []uint64) {
	for i := range v {
		v[i] = 0
	}
	v[s.cfg.Shard] = s.ownVersion
	for k, r := range s.remote {
		if k < len(v) {
			v[k] = r.version
		}
	}
}

// appendDeltaReply encodes, under the lock, a ShardDelta holding every
// shard on which the digest's sender trails this member's knowledge.
// The frame is built straight from the stored snapshots (and the owned
// table), no intermediate copies.
func (s *Supernode) appendDeltaReply(dst []byte, d *proto.Digest) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := len(s.cfg.Federation)
	if d.From >= 0 && d.From < k {
		s.memberSeen[d.From] = s.rt.Now() // the sender is provably alive
	}
	var states []proto.ShardState
	reqVersion := func(i int) uint64 {
		if i < len(d.Versions) {
			return d.Versions[i]
		}
		return 0
	}
	if s.ownVersion > reqVersion(s.cfg.Shard) {
		states = append(states, s.ownShardStateLocked())
	}
	for i := 0; i < k; i++ {
		if r := s.remote[i]; r != nil && r.version > reqVersion(i) {
			states = append(states, proto.ShardState{
				Shard: i, Version: r.version, Stamp: r.stamp,
				Peers: r.peers, Seen: r.seen,
			})
		}
	}
	frame, _ := proto.AppendMarshal(dst, &proto.ShardDelta{Shards: states})
	return frame
}

// ownShardStateLocked snapshots the owned set for a gossip reply. The
// Peers slice aliases the sorted owned table (the encoder reads it
// under the same lock); Seen is built on the fly.
func (s *Supernode) ownShardStateLocked() proto.ShardState {
	seen := make([]int64, len(s.listCache))
	for i := range s.listCache {
		if e := s.peers[s.listCache[i].ID]; e != nil {
			seen[i] = e.lastSeen.UnixNano()
		}
	}
	return proto.ShardState{
		Shard: s.cfg.Shard, Version: s.ownVersion, Stamp: s.ownStamp,
		Peers: s.listCache, Seen: seen,
	}
}

// applyShardLocked folds one received snapshot into the federation
// view: it replaces the stored snapshot for that shard and rebuilds the
// affected slice of the merged view with one linear merge pass.
func (s *Supernode) applyShardLocked(st *proto.ShardState) {
	k := st.Shard
	if k == s.cfg.Shard || k < 0 || k >= len(s.cfg.Federation) {
		return // own shard is authoritative locally; bogus index dropped
	}
	old := s.remote[k]
	if old != nil && st.Version <= old.version {
		return
	}
	if st.Stamp > 0 {
		lag := s.rt.Now().UnixNano() - st.Stamp
		if lag > 0 {
			s.stats.StaleSamples++
			s.stats.StaleSumNS += lag
			if lag > s.stats.StaleMaxNS {
				s.stats.StaleMaxNS = lag
			}
		}
	}
	// Canonicalize the snapshot before retaining it: per-entry interning
	// shares the string data with the rest of the world, and the
	// whole-slice check lets every member that received this
	// (shard, version) hold the same backing array — the federation then
	// retains one copy of each shard's table instead of K−1. Last-seen
	// stamps stay per-member (they differ between pulls of one version).
	it := s.cfg.Intern
	it.InternList(st.Peers)
	peers := it.Snapshot(k, st.Version, st.Peers)
	s.remote[k] = &remoteShard{version: st.Version, stamp: st.Stamp,
		peers: peers, seen: st.Seen, appliedAt: s.rt.Now()}
	// Rebuild the merged view with one linear two-pointer pass over the
	// (both ID-sorted) current view and the new snapshot — per-entry
	// splices would make a boot-storm convergence O(world²). Entries the
	// shard no longer claims are collected and reinstated from the other
	// shards' snapshots afterwards (drops are rare; the common applies —
	// boot fill and steady refresh — never take that path).
	claimSeen := func(j int) int64 {
		if j < len(st.Seen) {
			return st.Seen[j]
		}
		return 0
	}
	out := make([]proto.PeerInfo, 0, len(s.merged)+len(peers))
	metaOut := make([]entryMeta, 0, len(s.merged)+len(peers))
	var dropped []string
	i, j := 0, 0
	for i < len(s.merged) || j < len(peers) {
		switch {
		case j >= len(peers) || (i < len(s.merged) && s.merged[i].ID < peers[j].ID):
			if s.meta[i].shard == k {
				// Previously attributed to this shard, no longer claimed.
				dropped = append(dropped, s.merged[i].ID)
			} else {
				out = append(out, s.merged[i])
				metaOut = append(metaOut, s.meta[i])
			}
			i++
		case i >= len(s.merged) || peers[j].ID < s.merged[i].ID:
			// New host for the merged view.
			out = append(out, peers[j])
			metaOut = append(metaOut, entryMeta{shard: k, seen: claimSeen(j)})
			j++
		default: // same ID: resolve precedence
			m := s.meta[i]
			seen := claimSeen(j)
			if m.shard == k || seen > m.seen || (seen == m.seen && k < m.shard) {
				out = append(out, peers[j])
				metaOut = append(metaOut, entryMeta{shard: k, seen: seen})
			} else {
				out = append(out, s.merged[i])
				metaOut = append(metaOut, m)
			}
			i++
			j++
		}
	}
	// Offer the rebuild for sharing: once gossip converges every member
	// rebuilds the same view, and they all adopt one canonical slice.
	s.merged = it.MergedView(out)
	s.mergedShared = it != nil
	s.meta = metaOut
	for _, id := range dropped {
		s.reinstateLocked(id, k)
	}
}

// reinstateLocked re-adds the freshest surviving claim for a host whose
// previous attribution just disappeared (the owned table and every
// other shard's snapshot are consulted).
func (s *Supernode) reinstateLocked(id string, exclude int) {
	bestShard, bestSeen, bestIdx := -1, int64(0), -1
	for k, r := range s.remote {
		if k == exclude {
			continue
		}
		if i, found := findSorted(r.peers, id); found {
			seen := int64(0)
			if i < len(r.seen) {
				seen = r.seen[i]
			}
			if bestShard == -1 || seen > bestSeen || (seen == bestSeen && k < bestShard) {
				bestShard, bestSeen, bestIdx = k, seen, i
			}
		}
	}
	if exclude != s.cfg.Shard {
		if e, owned := s.peers[id]; owned {
			if bestShard == -1 || e.lastSeen.UnixNano() >= bestSeen {
				s.mergedUpsertLocked(e.info, s.cfg.Shard, e.lastSeen.UnixNano())
				return
			}
		}
	}
	if bestShard >= 0 {
		s.mergedUpsertLocked(s.remote[bestShard].peers[bestIdx], bestShard, bestSeen)
	}
}

// Client-side helpers: one-shot exchanges with a supernode.

// RegisterWith announces self to the supernode and returns the host list.
func RegisterWith(net transport.Network, snAddr string, self proto.PeerInfo, timeout time.Duration) ([]proto.PeerInfo, error) {
	return RegisterWithInto(net, snAddr, self, timeout, nil)
}

// RegisterWithInto is RegisterWith appending the host list to dst
// (reusing its capacity) — the form callers with scratch slices use, so
// an O(world) reply does not allocate an O(world) slice per refresh.
func RegisterWithInto(net transport.Network, snAddr string, self proto.PeerInfo, timeout time.Duration, dst []proto.PeerInfo) ([]proto.PeerInfo, error) {
	reply, err := RegisterRaw(net, snAddr, self, false, timeout)
	if err != nil {
		return dst, err
	}
	out, err := proto.UnmarshalPeerList(reply.Payload, dst)
	reply.Release()
	return out, err
}

// RegisterRaw performs the Register exchange and returns the raw reply
// frame — a PeerList, or (in a federation) possibly a ShardRedirect.
// The caller decodes it (proto.UnmarshalPeerList after a Peek) and
// releases the message; deferring the decode lets hot refresh loops
// borrow their scratch only for the decode itself instead of across the
// whole network round trip. forced marks a failover registration that a
// foreign shard must foster rather than redirect.
func RegisterRaw(net transport.Network, snAddr string, self proto.PeerInfo, forced bool, timeout time.Duration) (transport.Message, error) {
	return transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.Register{Peer: self, Forced: forced})}, timeout)
}

// FetchFrom retrieves a fresh host list from the supernode.
func FetchFrom(net transport.Network, snAddr string, timeout time.Duration) ([]proto.PeerInfo, error) {
	return FetchFromInto(net, snAddr, timeout, nil)
}

// FetchFromInto is FetchFrom appending into dst (reusing its capacity).
func FetchFromInto(net transport.Network, snAddr string, timeout time.Duration, dst []proto.PeerInfo) ([]proto.PeerInfo, error) {
	reply, err := FetchRaw(net, snAddr, timeout)
	if err != nil {
		return dst, err
	}
	out, err := proto.UnmarshalPeerList(reply.Payload, dst)
	reply.Release()
	return out, err
}

// FetchRaw performs the FetchPeers exchange and returns the raw PeerList
// reply frame; see RegisterRaw for why callers decode it themselves.
func FetchRaw(net transport.Network, snAddr string, timeout time.Duration) (transport.Message, error) {
	return transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.FetchPeers{})}, timeout)
}

// SendAlive refreshes self's last-seen stamp at the supernode. The
// returned flag reports whether that supernode actually lists the peer;
// false (an expired or foreign entry) means the sender should
// re-register rather than keep refreshing a ghost.
func SendAlive(net transport.Network, snAddr, selfID string, timeout time.Duration) (bool, error) {
	reply, err := transport.RequestReply(net, snAddr,
		transport.Message{Payload: proto.MustMarshal(&proto.Alive{ID: selfID})}, timeout)
	if err != nil {
		return false, err
	}
	var ack proto.AliveAck
	err = proto.DecodeInto(reply.Payload, &ack)
	reply.Release()
	if err != nil {
		return false, err
	}
	return ack.Known, nil
}
