package overlay

import (
	"slices"
	"sync"

	"p2pmpi/internal/proto"
)

// Interner canonicalizes membership data across one deployment. A
// simulated world holds every daemon in one process, so the same
// PeerInfo is decoded from the wire thousands of times — once per
// supernode that gossips it, once per cache snapshot that carries it —
// and each decode allocates four fresh strings. Interning swaps every
// copy for one canonical value, which is strictly invisible to the
// simulation (the values are equal; only the backing allocations are
// shared) and cuts the K-member federation's retained state from
// O(K·world) string data to O(world).
//
// All methods are safe for concurrent use from parallel shards and are
// nil-receiver safe (a nil Interner interns nothing), so the wiring can
// stay unconditional.
type Interner struct {
	// peers maps host ID -> canonical proto.PeerInfo, striped by ID hash
	// so parallel shards rarely collide. Plain maps under RWMutexes beat
	// a sync.Map here on memory, not speed: the HashTrieMap spends ~200 B
	// of node structure plus a boxed copy per entry, which at a million
	// hosts is a fifth of the whole budget. Reads vastly outnumber writes
	// (every host's info is written once and looked up K+world times),
	// and interning sits on membership paths, not the data plane, so a
	// striped read-lock is cheap.
	peers [internStripes]internStripe

	mu sync.Mutex
	// snaps holds, per federation shard, the newest decoded snapshot
	// list seen world-wide. Every member that receives the same
	// (shard, version) decodes a value-identical list; handing them all
	// the first decode means a K-member federation retains one copy of
	// each shard's table instead of K-1.
	snaps map[int]snapEntry
	// merged is the canonical merged federation view. After gossip
	// converges every member rebuilds the same ID-sorted union; adopting
	// one canonical slice collapses K value-identical O(world) arrays
	// into one. Members treat an adopted (or published) slice as shared
	// and copy-on-write before any in-place edit.
	merged []proto.PeerInfo
}

type snapEntry struct {
	version uint64
	peers   []proto.PeerInfo
}

const internStripes = 16

type internStripe struct {
	mu sync.RWMutex
	m  map[string]proto.PeerInfo
}

// stripeFor hashes a host ID onto a stripe (FNV-1a, inlined — the IDs
// are short and this runs on every intern lookup).
func stripeFor(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return int(h % internStripes)
}

// NewInterner creates an empty interner, one per deployment.
func NewInterner() *Interner { return &Interner{} }

// PeerInfo returns the canonical copy of p, registering p as canonical
// if its ID is new or its info changed. Equality is over the full
// struct, so a host that re-registers with different addresses replaces
// its canonical value rather than being masked by a stale one.
func (it *Interner) PeerInfo(p proto.PeerInfo) proto.PeerInfo {
	if it == nil {
		return p
	}
	st := &it.peers[stripeFor(p.ID)]
	st.mu.RLock()
	c, ok := st.m[p.ID]
	st.mu.RUnlock()
	if ok && c == p {
		return c
	}
	st.mu.Lock()
	if st.m == nil {
		st.m = make(map[string]proto.PeerInfo)
	}
	st.m[p.ID] = p
	st.mu.Unlock()
	return p
}

// InternList canonicalizes every entry of list in place. After it
// returns, entries equal to the canonical value share its backing
// strings, which makes later whole-slice equality checks mostly
// pointer comparisons.
func (it *Interner) InternList(list []proto.PeerInfo) {
	if it == nil {
		return
	}
	for i := range list {
		list[i] = it.PeerInfo(list[i])
	}
}

// Snapshot canonicalizes one decoded shard snapshot. If the newest
// known list for the shard has the same version and equal content, the
// fresh decode is dropped in favour of the shared copy; a newer version
// replaces the stored one. The returned slice must be treated as
// read-only (every member of the federation may hold it) — which
// matches how remote snapshots are used: they are replaced wholesale,
// never edited. Last-seen stamps are NOT part of the snapshot here:
// they differ between pulls of the same version (keep-alives refresh
// stamps without bumping the version), so each member keeps its own.
func (it *Interner) Snapshot(shard int, version uint64, list []proto.PeerInfo) []proto.PeerInfo {
	if it == nil {
		return list
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if e, ok := it.snaps[shard]; ok && e.version == version {
		if slices.Equal(e.peers, list) {
			return e.peers
		}
		return list // same version, different content: trust the caller's
	} else if ok && e.version > version {
		return list // stale pull overtaken by a newer stored snapshot
	}
	if it.snaps == nil {
		it.snaps = make(map[int]snapEntry)
	}
	it.snaps[shard] = snapEntry{version: version, peers: list}
	return list
}

// MergedView offers a freshly rebuilt merged view for sharing and
// returns the canonical slice to keep. When the offer equals the
// current canonical view (the post-convergence steady state), the
// caller adopts the shared copy and its own rebuild becomes garbage;
// otherwise the offer becomes the new canonical candidate. Either way
// the returned slice may be aliased by other members: the caller must
// copy-on-write before in-place edits.
func (it *Interner) MergedView(list []proto.PeerInfo) []proto.PeerInfo {
	if it == nil {
		return list
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if slices.Equal(it.merged, list) {
		return it.merged
	}
	it.merged = list
	return list
}
