package overlay

import (
	"fmt"
	"testing"
)

// shardHosts generates n synthetic host IDs shaped like the grids'
// ("c04-17.s04" style): realistic key structure for the hash.
func shardHosts(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("c%02d-%d.s%02d", i%16+1, i/16+1, i%16+1))
	}
	return out
}

// TestShardAssignDeterministic: the assignment is a pure function of
// (hostID, K) — repeated calls and permuted evaluation order agree.
func TestShardAssignDeterministic(t *testing.T) {
	hosts := shardHosts(1000)
	for _, k := range []int{1, 2, 4, 16} {
		first := make(map[string]int, len(hosts))
		for _, h := range hosts {
			first[h] = ShardAssign(h, k)
		}
		for i := len(hosts) - 1; i >= 0; i-- {
			h := hosts[i]
			if got := ShardAssign(h, k); got != first[h] {
				t.Fatalf("K=%d: ShardAssign(%q) flapped %d -> %d", k, h, first[h], got)
			}
		}
	}
}

// TestShardAssignRange: results stay in [0, K), and K <= 1 pins to 0.
func TestShardAssignRange(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 16} {
		for _, h := range shardHosts(200) {
			got := ShardAssign(h, k)
			if got < 0 || got >= k || (k <= 1 && got != 0) {
				t.Fatalf("ShardAssign(%q, %d) = %d out of range", h, k, got)
			}
		}
	}
}

// TestShardAssignBalance: at 10k hosts every shard's population stays
// within ±20% of the ideal N/K, for every federation width the sweeps
// use. Rendezvous scores are i.i.d. per shard, so this is a tight bound
// the hash must actually earn.
func TestShardAssignBalance(t *testing.T) {
	hosts := shardHosts(10000)
	for _, k := range []int{2, 4, 8, 16} {
		counts := make([]int, k)
		for _, h := range hosts {
			counts[ShardAssign(h, k)]++
		}
		ideal := float64(len(hosts)) / float64(k)
		for s, c := range counts {
			if dev := float64(c)/ideal - 1; dev > 0.2 || dev < -0.2 {
				t.Errorf("K=%d shard %d holds %d hosts (ideal %.0f, deviation %+.1f%%)",
					k, s, c, ideal, 100*dev)
			}
		}
	}
}

// TestShardAssignMinimalReshuffle: growing the federation K -> K+1
// moves only hosts whose new home is the added shard — nobody shuffles
// between pre-existing shards — and the moved fraction stays near the
// rendezvous ideal 1/(K+1) (within 2x).
func TestShardAssignMinimalReshuffle(t *testing.T) {
	hosts := shardHosts(10000)
	for _, k := range []int{1, 3, 4, 15} {
		moved := 0
		for _, h := range hosts {
			before, after := ShardAssign(h, k), ShardAssign(h, k+1)
			if before == after {
				continue
			}
			if after != k {
				t.Fatalf("K=%d->%d: host %q moved %d -> %d, not to the new shard",
					k, k+1, h, before, after)
			}
			moved++
		}
		frac, ideal := float64(moved)/float64(len(hosts)), 1/float64(k+1)
		if frac > 2*ideal {
			t.Errorf("K=%d->%d moved %.1f%% of hosts (ideal %.1f%%)",
				k, k+1, 100*frac, 100*ideal)
		}
		if moved == 0 {
			t.Errorf("K=%d->%d moved nobody; the added shard would start empty", k, k+1)
		}
	}
}
