package overlay

import (
	"testing"
	"time"

	"p2pmpi/internal/latency"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

func simWorld(t *testing.T) (*vtime.Scheduler, *simnet.Net) {
	t.Helper()
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	topo := &simnet.StaticTopology{
		HostSite: map[string]string{
			"sn": "hub", "p1": "east", "p2": "east", "p3": "west",
		},
		DefLat: 2 * time.Millisecond,
	}
	n := simnet.New(s, topo, simnet.Config{Seed: 3, NICBps: 1e9})
	return s, n
}

func peer(id string) proto.PeerInfo {
	return proto.PeerInfo{ID: id, MPDAddr: id + ":9000", RSAddr: id + ":9001"}
}

func TestRegisterReturnsHostList(t *testing.T) {
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{Addr: "sn:8800"})
	var got []proto.PeerInfo
	s.Go("main", func() {
		if err := sn.Start(); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		if _, err := RegisterWith(n.Node("p1"), "sn:8800", peer("p1"), time.Second); err != nil {
			t.Errorf("register p1: %v", err)
		}
		list, err := RegisterWith(n.Node("p2"), "sn:8800", peer("p2"), time.Second)
		if err != nil {
			t.Errorf("register p2: %v", err)
		}
		got = list
		sn.Close()
	})
	s.Wait()
	if len(got) != 2 || got[0].ID != "p1" || got[1].ID != "p2" {
		t.Fatalf("host list = %+v", got)
	}
}

func TestAliveKeepsPeerListed(t *testing.T) {
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{
		Addr: "sn:8800", TTL: 10 * time.Second, SweepInterval: 2 * time.Second,
	})
	s.Go("main", func() {
		sn.Start()
		RegisterWith(n.Node("p1"), "sn:8800", peer("p1"), time.Second)
		RegisterWith(n.Node("p2"), "sn:8800", peer("p2"), time.Second)
		// p1 stays alive, p2 goes silent.
		for i := 0; i < 10; i++ {
			s.Sleep(4 * time.Second)
			if err := SendAlive(n.Node("p1"), "sn:8800", "p1", time.Second); err != nil {
				t.Errorf("alive: %v", err)
			}
		}
		list, err := FetchFrom(n.Node("p3"), "sn:8800", time.Second)
		if err != nil {
			t.Errorf("fetch: %v", err)
		}
		if len(list) != 1 || list[0].ID != "p1" {
			t.Errorf("after expiry, list = %+v", list)
		}
		sn.Close()
	})
	s.Wait()
}

func TestFetchFromUnreachableSupernode(t *testing.T) {
	s, n := simWorld(t)
	var err error
	s.Go("main", func() {
		_, err = FetchFrom(n.Node("p1"), "sn:8800", time.Second)
	})
	s.Wait()
	if err == nil {
		t.Fatal("fetch from nothing succeeded")
	}
}

func TestReregisterUpdatesInfo(t *testing.T) {
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{Addr: "sn:8800"})
	s.Go("main", func() {
		sn.Start()
		RegisterWith(n.Node("p1"), "sn:8800", peer("p1"), time.Second)
		p := peer("p1")
		p.MPDAddr = "p1:9999" // moved port
		RegisterWith(n.Node("p1"), "sn:8800", p, time.Second)
		list, _ := FetchFrom(n.Node("p2"), "sn:8800", time.Second)
		if len(list) != 1 || list[0].MPDAddr != "p1:9999" {
			t.Errorf("list = %+v", list)
		}
		sn.Close()
	})
	s.Wait()
}

func TestSupernodeIgnoresGarbage(t *testing.T) {
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{Addr: "sn:8800"})
	s.Go("main", func() {
		sn.Start()
		c, err := n.Node("p1").Dial("sn:8800")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Send(transport.Message{Payload: []byte{0xFF, 0x00, 0x01}})
		// The supernode must drop the conn, not crash.
		s.Sleep(50 * time.Millisecond)
		if sn.PeerCount() != 0 {
			t.Errorf("garbage registered a peer")
		}
		// And still serve well-formed clients afterwards.
		if _, err := RegisterWith(n.Node("p2"), "sn:8800", peer("p2"), time.Second); err != nil {
			t.Errorf("register after garbage: %v", err)
		}
		sn.Close()
	})
	s.Wait()
}

func TestCacheExcludesSelf(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Update([]proto.PeerInfo{peer("me"), peer("a"), peer("b")})
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2 (self excluded)", c.Size())
	}
}

func TestCacheRankedOrder(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Update([]proto.PeerInfo{peer("far"), peer("near"), peer("mid"), peer("new")})
	c.Observe("far", 30*time.Millisecond)
	c.Observe("near", time.Millisecond)
	c.Observe("mid", 10*time.Millisecond)
	r := c.Ranked()
	want := []string{"near", "mid", "far", "new"} // unmeasured last
	for i, w := range want {
		if r[i].Info.ID != w {
			t.Fatalf("ranked = %v, want %v at %d", ids(r), w, i)
		}
	}
	if r[3].Latency != latency.Unknown {
		t.Fatalf("unmeasured peer has latency %v", r[3].Latency)
	}
}

func ids(r []RankedPeer) []string {
	out := make([]string, len(r))
	for i := range r {
		out[i] = r[i].Info.ID
	}
	return out
}

func TestCacheMarkDead(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Update([]proto.PeerInfo{peer("a"), peer("b")})
	c.Observe("a", time.Millisecond)
	c.MarkDead("a")
	if c.Size() != 1 {
		t.Fatalf("size = %d after MarkDead", c.Size())
	}
	if _, ok := c.Peer("a"); ok {
		t.Fatal("dead peer still present")
	}
	// A fresh snapshot resurrects it (the supernode still lists it).
	c.Update([]proto.PeerInfo{peer("a")})
	if c.Size() != 2 {
		t.Fatal("snapshot did not resurrect peer")
	}
	if c.Latency("a") != latency.Unknown {
		t.Fatal("stale latency survived death")
	}
}

func TestCacheObserveUnknownPeerIgnored(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Observe("ghost", time.Millisecond)
	if c.Latency("ghost") != latency.Unknown {
		t.Fatal("observation for unknown peer recorded")
	}
}
