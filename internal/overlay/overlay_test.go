package overlay

import (
	"fmt"
	"testing"
	"time"

	"p2pmpi/internal/latency"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

func simWorld(t *testing.T) (*vtime.Scheduler, *simnet.Net) {
	t.Helper()
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	topo := &simnet.StaticTopology{
		HostSite: map[string]string{
			"sn": "hub", "p1": "east", "p2": "east", "p3": "west",
		},
		DefLat: 2 * time.Millisecond,
	}
	n := simnet.New(s, topo, simnet.Config{Seed: 3, NICBps: 1e9})
	return s, n
}

func peer(id string) proto.PeerInfo {
	return proto.PeerInfo{ID: id, MPDAddr: id + ":9000", RSAddr: id + ":9001"}
}

func TestRegisterReturnsHostList(t *testing.T) {
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{Addr: "sn:8800"})
	var got []proto.PeerInfo
	s.Go("main", func() {
		if err := sn.Start(); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		if _, err := RegisterWith(n.Node("p1"), "sn:8800", peer("p1"), time.Second); err != nil {
			t.Errorf("register p1: %v", err)
		}
		list, err := RegisterWith(n.Node("p2"), "sn:8800", peer("p2"), time.Second)
		if err != nil {
			t.Errorf("register p2: %v", err)
		}
		got = list
		sn.Close()
	})
	s.Wait()
	if len(got) != 2 || got[0].ID != "p1" || got[1].ID != "p2" {
		t.Fatalf("host list = %+v", got)
	}
}

func TestAliveKeepsPeerListed(t *testing.T) {
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{
		Addr: "sn:8800", TTL: 10 * time.Second, SweepInterval: 2 * time.Second,
	})
	s.Go("main", func() {
		sn.Start()
		RegisterWith(n.Node("p1"), "sn:8800", peer("p1"), time.Second)
		RegisterWith(n.Node("p2"), "sn:8800", peer("p2"), time.Second)
		// p1 stays alive, p2 goes silent.
		for i := 0; i < 10; i++ {
			s.Sleep(4 * time.Second)
			known, err := SendAlive(n.Node("p1"), "sn:8800", "p1", time.Second)
			if err != nil {
				t.Errorf("alive: %v", err)
			} else if !known {
				t.Errorf("alive: supernode forgot p1")
			}
		}
		list, err := FetchFrom(n.Node("p3"), "sn:8800", time.Second)
		if err != nil {
			t.Errorf("fetch: %v", err)
		}
		if len(list) != 1 || list[0].ID != "p1" {
			t.Errorf("after expiry, list = %+v", list)
		}
		sn.Close()
	})
	s.Wait()
}

func TestFetchFromUnreachableSupernode(t *testing.T) {
	s, n := simWorld(t)
	var err error
	s.Go("main", func() {
		_, err = FetchFrom(n.Node("p1"), "sn:8800", time.Second)
	})
	s.Wait()
	if err == nil {
		t.Fatal("fetch from nothing succeeded")
	}
}

func TestReregisterUpdatesInfo(t *testing.T) {
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{Addr: "sn:8800"})
	s.Go("main", func() {
		sn.Start()
		RegisterWith(n.Node("p1"), "sn:8800", peer("p1"), time.Second)
		p := peer("p1")
		p.MPDAddr = "p1:9999" // moved port
		RegisterWith(n.Node("p1"), "sn:8800", p, time.Second)
		list, _ := FetchFrom(n.Node("p2"), "sn:8800", time.Second)
		if len(list) != 1 || list[0].MPDAddr != "p1:9999" {
			t.Errorf("list = %+v", list)
		}
		sn.Close()
	})
	s.Wait()
}

func TestSupernodeIgnoresGarbage(t *testing.T) {
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{Addr: "sn:8800"})
	s.Go("main", func() {
		sn.Start()
		c, err := n.Node("p1").Dial("sn:8800")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Send(transport.Message{Payload: []byte{0xFF, 0x00, 0x01}})
		// The supernode must drop the conn, not crash.
		s.Sleep(50 * time.Millisecond)
		if sn.PeerCount() != 0 {
			t.Errorf("garbage registered a peer")
		}
		// And still serve well-formed clients afterwards.
		if _, err := RegisterWith(n.Node("p2"), "sn:8800", peer("p2"), time.Second); err != nil {
			t.Errorf("register after garbage: %v", err)
		}
		sn.Close()
	})
	s.Wait()
}

func TestCacheExcludesSelf(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Update([]proto.PeerInfo{peer("me"), peer("a"), peer("b")})
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2 (self excluded)", c.Size())
	}
}

func TestCacheRankedOrder(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Update([]proto.PeerInfo{peer("far"), peer("near"), peer("mid"), peer("new")})
	c.Observe("far", 30*time.Millisecond)
	c.Observe("near", time.Millisecond)
	c.Observe("mid", 10*time.Millisecond)
	r := c.Ranked()
	want := []string{"near", "mid", "far", "new"} // unmeasured last
	for i, w := range want {
		if r[i].Info.ID != w {
			t.Fatalf("ranked = %v, want %v at %d", ids(r), w, i)
		}
	}
	if r[3].Latency != latency.Unknown {
		t.Fatalf("unmeasured peer has latency %v", r[3].Latency)
	}
}

func ids(r []RankedPeer) []string {
	out := make([]string, len(r))
	for i := range r {
		out[i] = r[i].Info.ID
	}
	return out
}

func TestCacheMarkDead(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Update([]proto.PeerInfo{peer("a"), peer("b")})
	c.Observe("a", time.Millisecond)
	c.MarkDead("a")
	if c.Size() != 1 {
		t.Fatalf("size = %d after MarkDead", c.Size())
	}
	if _, ok := c.Peer("a"); ok {
		t.Fatal("dead peer still present")
	}
	// A fresh snapshot resurrects it (the supernode still lists it).
	c.Update([]proto.PeerInfo{peer("a")})
	if c.Size() != 2 {
		t.Fatal("snapshot did not resurrect peer")
	}
	if c.Latency("a") != latency.Unknown {
		t.Fatal("stale latency survived death")
	}
}

func TestCacheObserveUnknownPeerIgnored(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Observe("ghost", time.Millisecond)
	if c.Latency("ghost") != latency.Unknown {
		t.Fatal("observation for unknown peer recorded")
	}
}

func TestSupernodeMaxPeersReturned(t *testing.T) {
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{Addr: "sn:8800", MaxPeersReturned: 2})
	s.Go("main", func() {
		sn.Start()
		var lastReply []proto.PeerInfo
		for _, id := range []string{"p1", "p2", "p3"} {
			list, err := RegisterWith(n.Node(id), "sn:8800", peer(id), time.Second)
			if err != nil {
				t.Errorf("register %s: %v", id, err)
			}
			lastReply = list
		}
		if len(lastReply) != 2 {
			t.Errorf("register reply carried %d peers, want 2", len(lastReply))
		}
		// Every reply is bounded, and window starts are fresh seeded
		// draws, so repeated refreshes cover the whole membership — no
		// host is permanently hidden behind the cap.
		covered := map[string]bool{}
		for i := 0; i < 12; i++ {
			list, err := FetchFrom(n.Node("p1"), "sn:8800", time.Second)
			if err != nil {
				t.Errorf("fetch %d: %v", i, err)
				continue
			}
			if len(list) != 2 {
				t.Errorf("fetch %d returned %d peers, want 2", i, len(list))
			}
			for _, p := range list {
				covered[p.ID] = true
			}
		}
		if len(covered) != 3 {
			t.Errorf("rotating window covered %v, want all 3 peers", covered)
		}
		// The supernode still tracks everyone; only replies are bounded.
		if sn.PeerCount() != 3 {
			t.Errorf("peer count = %d, want 3", sn.PeerCount())
		}
		if got := sn.Snapshot(); len(got) != 3 {
			t.Errorf("snapshot = %d peers, want full table", len(got))
		}
		sn.Close()
	})
	s.Wait()
}

func TestSupernodeBoundedRepliesNoLockstepAliasing(t *testing.T) {
	// Clients fetching in strict lockstep must each still cover the
	// whole membership. Any deterministic cursor stride aliases to a
	// fixed window whenever clients × stride ≡ 0 mod table size (here 2
	// clients over a 4-peer table); the seeded per-reply random window
	// start has no cadence to resonate with.
	s, n := simWorld(t)
	sn := NewSupernode(s, n.Node("sn"), SupernodeConfig{Addr: "sn:8800", MaxPeersReturned: 2, Seed: 11})
	s.Go("main", func() {
		sn.Start()
		for _, id := range []string{"a1", "a2", "a3", "a4"} {
			if _, err := RegisterWith(n.Node("p1"), "sn:8800", peer(id), time.Second); err != nil {
				t.Errorf("register %s: %v", id, err)
			}
		}
		covered := map[string]map[string]bool{"p1": {}, "p2": {}}
		for round := 0; round < 16; round++ {
			for _, client := range []string{"p1", "p2"} {
				list, err := FetchFrom(n.Node(client), "sn:8800", time.Second)
				if err != nil {
					t.Errorf("fetch %s: %v", client, err)
					continue
				}
				for _, p := range list {
					covered[client][p.ID] = true
				}
			}
		}
		for client, ids := range covered {
			if len(ids) != 4 {
				t.Errorf("client %s only ever saw %v", client, ids)
			}
		}
		sn.Close()
	})
	s.Wait()
}

func TestCacheRankedMemoizedAcrossMutations(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Update([]proto.PeerInfo{peer("a"), peer("b"), peer("c")})
	c.Observe("a", 3*time.Millisecond)
	c.Observe("b", time.Millisecond)
	c.Observe("c", 2*time.Millisecond)
	r1 := c.Ranked()
	// A repeated call returns the same ordering from the memo, in a
	// slice the caller owns.
	r2 := c.Ranked()
	r2[0] = RankedPeer{} // must not corrupt the cache's copy
	r3 := c.Ranked()
	if ids(r1)[0] != "b" || ids(r3)[0] != "b" {
		t.Fatalf("memoized ranking broken: %v then %v", ids(r1), ids(r3))
	}
	// Every mutation kind invalidates: a new observation...
	c.Observe("a", 100*time.Microsecond)
	if got := ids(c.Ranked()); got[0] != "a" {
		t.Fatalf("after re-observe, ranking = %v", got)
	}
	// ...a death...
	c.MarkDead("a")
	if got := ids(c.Ranked()); len(got) != 2 || got[0] != "b" {
		t.Fatalf("after death, ranking = %v", got)
	}
	// ...and a snapshot that teaches a new peer.
	c.Update([]proto.PeerInfo{peer("d")})
	if got := ids(c.Ranked()); len(got) != 3 || got[2] != "d" {
		t.Fatalf("after update, ranking = %v", got)
	}
	// A snapshot that changes nothing keeps the memo warm (observable
	// only through the benchmark, but it must at least stay correct).
	c.Update([]proto.PeerInfo{peer("d")})
	if got := ids(c.Ranked()); len(got) != 3 {
		t.Fatalf("after no-op update, ranking = %v", got)
	}
}

// TestCacheRankedRevivedPeerInvalidates is the churn regression: a
// snapshot that revives a previously-dead peer carries *unchanged*
// PeerInfo (the host rebooted with the same identity), so the
// "new info?" comparison alone would keep the memoized ranking — which
// still evicts the peer — alive. The dead→alive transition itself must
// invalidate.
func TestCacheRankedRevivedPeerInvalidates(t *testing.T) {
	c := NewCache("me", latency.KindLast, 0)
	c.Update([]proto.PeerInfo{peer("a"), peer("b"), peer("c")})
	c.Observe("a", time.Millisecond)
	c.Observe("b", 2*time.Millisecond)
	c.Observe("c", 3*time.Millisecond)
	c.MarkDead("b")
	if got := ids(c.Ranked()); len(got) != 2 {
		t.Fatalf("dead peer not evicted from ranked replies: %v", got)
	}
	if !c.Dead("b") {
		t.Fatal("b not marked dead")
	}
	// The reviving snapshot ships byte-identical info for b.
	c.Update([]proto.PeerInfo{peer("b")})
	got := ids(c.Ranked())
	if len(got) != 3 {
		t.Fatalf("revived peer missing from ranked replies (stale memo): %v", got)
	}
	if c.Dead("b") {
		t.Fatal("b still marked dead after revival")
	}
	// Its latency history died with it: unmeasured peers sort last.
	if got[2] != "b" {
		t.Fatalf("revived peer kept stale latency: %v", got)
	}
	if c.Size() != 3 {
		t.Fatalf("size = %d after revival, want 3", c.Size())
	}
}

// benchCache builds a cache holding k measured peers.
func benchCache(k int) *Cache {
	c := NewCache("me", latency.KindLast, 0)
	peers := make([]proto.PeerInfo, k)
	for i := range peers {
		peers[i] = peer(fmt.Sprintf("peer%05d", i))
	}
	c.Update(peers)
	for i, p := range peers {
		c.Observe(p.ID, time.Duration(1+(i*7919)%5000)*time.Microsecond)
	}
	return c
}

// BenchmarkCacheRanked5k measures the satellite win: Submit re-ranks the
// cached peer list on every call, and at 5k peers the memoized path
// (warm: no mutation between calls) must beat the re-sorting path
// (invalidated: a ping lands between calls) by a wide margin.
func BenchmarkCacheRanked5k(b *testing.B) {
	b.Run("warm", func(b *testing.B) {
		c := benchCache(5000)
		c.Ranked() // prime the memo
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := c.Ranked(); len(r) != 5000 {
				b.Fatal("bad ranking")
			}
		}
	})
	b.Run("invalidated", func(b *testing.B) {
		c := benchCache(5000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Observe("peer00000", time.Duration(1+i%100)*time.Microsecond)
			if r := c.Ranked(); len(r) != 5000 {
				b.Fatal("bad ranking")
			}
		}
	})
}
