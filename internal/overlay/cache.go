package overlay

import (
	"sort"
	"sync"
	"time"

	"p2pmpi/internal/latency"
	"p2pmpi/internal/proto"
)

// Cache is the MPD's local copy of the supernode host list (the "cached
// list" of §4.1) together with the measured latency to each peer. The
// booking step consumes Ranked(), the ascending-latency ordering.
type Cache struct {
	mu     sync.Mutex
	selfID string
	peers  map[string]proto.PeerInfo
	lat    *latency.Table
	dead   map[string]bool // peers marked dead; ignored until re-learned

	// ranked memoizes the ascending-latency ordering. Submissions call
	// Ranked far more often than pings and snapshots mutate the cache,
	// so the O(n log n) sort (whose comparator does two estimator
	// lookups per comparison) runs only when the flag says the cached
	// slice went stale — every Observe/Update/MarkDead clears it.
	ranked      []RankedPeer
	rankedValid bool
}

// NewCache creates a cache for the peer with the given identity. The
// estimator kind controls how ping samples condense into the ordering
// latency (the paper's behaviour is KindLast).
func NewCache(selfID string, kind latency.Kind, window int) *Cache {
	return &Cache{
		selfID: selfID,
		peers:  make(map[string]proto.PeerInfo),
		lat:    latency.NewTable(kind, window),
		dead:   make(map[string]bool),
	}
}

// Update merges a host list snapshot into the cache. Self is excluded;
// a peer previously marked dead is resurrected only by a fresh snapshot
// (it re-registered or is still listed by the supernode).
func (c *Cache) Update(list []proto.PeerInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range list {
		if p.ID == c.selfID {
			continue
		}
		if old, known := c.peers[p.ID]; !known || old != p {
			c.rankedValid = false
		}
		c.peers[p.ID] = p
		delete(c.dead, p.ID)
	}
}

// Observe records a ping round-trip sample for a peer.
func (c *Cache) Observe(id string, rtt time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.peers[id]; ok {
		c.lat.Observe(id, rtt)
		c.rankedValid = false
	}
}

// MarkDead removes a peer that failed to answer a reservation or ping
// (§4.2 step 5: "nodes that have not responded before a given timeout
// are marked as dead").
func (c *Cache) MarkDead(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.peers[id]; ok {
		c.rankedValid = false
	}
	delete(c.peers, id)
	c.lat.Forget(id)
	c.dead[id] = true
}

// Size returns the number of live cached peers.
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers)
}

// Latency returns the current latency estimate for a peer.
func (c *Cache) Latency(id string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lat.Estimate(id)
}

// IDs returns the cached peer IDs sorted by ID. The order matters for
// reproducibility: the ping loop issues probes in this order, and each
// probe consumes draws from the seeded nonce and network-jitter
// sources — map-iteration order here would leak the runtime's map
// randomization into virtual timelines and break bit-for-bit
// simulation replay.
func (c *Cache) IDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.peers))
	for id := range c.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Peer returns the cached info for a peer.
func (c *Cache) Peer(id string) (proto.PeerInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[id]
	return p, ok
}

// Ranked returns all cached peers sorted by ascending measured latency;
// unmeasured peers sort last (the booking step may still probe them).
// The ordering is memoized: a call that follows no cache mutation costs
// one O(n) copy instead of a full re-sort. The returned slice is the
// caller's to keep.
func (c *Cache) Ranked() []RankedPeer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.rankedValid {
		ids := make([]string, 0, len(c.peers))
		for id := range c.peers {
			ids = append(ids, id)
		}
		sorted := c.lat.Rank(ids)
		ranked := make([]RankedPeer, 0, len(sorted))
		for _, id := range sorted {
			ranked = append(ranked, RankedPeer{
				Info:    c.peers[id],
				Latency: c.lat.Estimate(id),
			})
		}
		c.ranked = ranked
		c.rankedValid = true
	}
	out := make([]RankedPeer, len(c.ranked))
	copy(out, c.ranked)
	return out
}

// RankedPeer pairs a cached peer with its current latency estimate.
type RankedPeer struct {
	Info    proto.PeerInfo
	Latency time.Duration
}
