package overlay

import (
	"sort"
	"sync"
	"time"

	"p2pmpi/internal/latency"
	"p2pmpi/internal/proto"
)

// Cache is the MPD's local copy of the supernode host list (the "cached
// list" of §4.1) together with the measured latency to each peer. The
// booking step consumes Ranked(), the ascending-latency ordering.
//
// Peers marked dead stay in the table but are invisible to every
// consumer (Size, IDs, Peer, Ranked) until a fresh snapshot revives
// them: under churn a host that crashes and reboots keeps its identity,
// and retaining the entry lets the dead→alive transition be an O(1)
// flag flip instead of a full re-learn.
type Cache struct {
	mu     sync.Mutex
	selfID string
	peers  map[string]proto.PeerInfo
	lat    latency.Table // embedded by value: one Cache = one heap object
	dead   map[string]bool // peers marked dead; hidden until re-learned
	live   int             // len(peers) minus dead entries still in peers

	// pending holds snapshots accepted by Update but not yet merged.
	// Merging a host list is O(list) map work, and on a multi-thousand-
	// host world most caches belong to compute peers that take snapshots
	// at every registration yet are only ever *read* on the submitter —
	// so until the first read, Update just queues a copy of the list.
	// Replaying the snapshots in arrival order on first read produces
	// exactly the state eager merging would have; a cache nobody reads
	// never builds its map at all. Once materialized (a reader flushed),
	// merges go straight to the table again.
	pending      [][]proto.PeerInfo
	materialized bool

	// ranked memoizes the ascending-latency ordering. Submissions call
	// Ranked far more often than pings and snapshots mutate the cache,
	// so the O(n log n) sort (whose comparator does two estimator
	// lookups per comparison) runs only when the flag says the cached
	// slice went stale — every liveness or latency transition clears it:
	// Observe, Update (new info or a dead→alive revival) and MarkDead.
	ranked      []RankedPeer
	rankedValid bool

	// intern, when set, canonicalizes the PeerInfo values this cache
	// retains (pending copies and the merged table) against the
	// world-shared Interner — equal values, shared backing strings.
	intern *Interner
	// pendingCap bounds the total entries retained across queued
	// snapshots while unmaterialized (0 = unbounded); see SetPendingCap.
	pendingCap int
	pendingN   int
}

// NewCache creates a cache for the peer with the given identity. The
// estimator kind controls how ping samples condense into the ordering
// latency (the paper's behaviour is KindLast). The maps are built on
// first write: a compute peer whose cache is never consulted carries no
// table at all.
func NewCache(selfID string, kind latency.Kind, window int) *Cache {
	return &Cache{
		selfID: selfID,
		lat:    latency.MakeTable(kind, window),
	}
}

// SetInterner routes this cache's retained PeerInfo values through the
// deployment-wide interner. Behaviour-neutral (values are equal either
// way); call before the cache sees its first Update.
func (c *Cache) SetInterner(it *Interner) { c.intern = it }

// SetPendingCap bounds how many peer entries the cache retains, in
// total, across snapshots queued before materialization (0 keeps every
// entry, the historical behaviour). A million-host world's compute
// peers each receive an O(MaxPeersReturned) boot snapshot that nobody
// ever reads — the dominant per-host retention. The cap truncates what
// an unread cache keeps; it is a per-host local, content-deterministic
// decision, so it cannot perturb cross-shard replay. Once a reader
// materializes the cache, merges are uncapped again. Worlds whose
// compute-peer caches feed measurements (the paper-scale goldens) must
// leave this off; the harness only sets it on multi-thousand-host
// sweeps where only the frontal's view is consulted.
func (c *Cache) SetPendingCap(n int) { c.pendingCap = n }

// Update merges a host list snapshot into the cache. Self is excluded;
// a peer previously marked dead is resurrected only by a fresh snapshot
// (it re-registered or is still listed by the supernode). A revival
// invalidates the memoized ranking even when the peer's info is
// unchanged — the dead→alive transition alone changes what Ranked
// returns.
func (c *Cache) Update(list []proto.PeerInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.materialized {
		if len(c.pending) < maxPendingSnapshots {
			// Never read yet: defer the merge. The snapshot must be
			// copied — callers reuse pooled scratch slices. The copy is
			// interned (shared strings) and, when a cap bounds unread
			// retention, truncated to the remaining entry budget.
			keep := list
			if c.pendingCap > 0 {
				room := c.pendingCap - c.pendingN
				if room <= 0 {
					return
				}
				if len(keep) > room {
					keep = keep[:room]
				}
			}
			cp := make([]proto.PeerInfo, len(keep))
			for i, p := range keep {
				cp[i] = c.intern.PeerInfo(p)
			}
			c.pending = append(c.pending, cp)
			c.pendingN += len(cp)
			return
		}
		// A long-horizon run keeps refreshing a cache nobody reads;
		// unbounded deferral would retain one O(world) snapshot per
		// refresh. Past the cap, materialize and merge eagerly — the
		// boot storm (the case the deferral exists for) is long over.
		c.flushLocked()
	}
	c.mergeLocked(list)
}

// maxPendingSnapshots bounds the deferred-merge queue; see Update.
const maxPendingSnapshots = 8

// mergeLocked applies one snapshot to the materialized table.
func (c *Cache) mergeLocked(list []proto.PeerInfo) {
	if c.peers == nil {
		c.peers = make(map[string]proto.PeerInfo, len(list))
	}
	for _, p := range list {
		if p.ID == c.selfID {
			continue
		}
		p = c.intern.PeerInfo(p)
		old, known := c.peers[p.ID]
		if !known || old != p || c.dead[p.ID] {
			c.rankedValid = false
		}
		if !known || c.dead[p.ID] {
			c.live++
		}
		c.peers[p.ID] = p
		delete(c.dead, p.ID)
	}
}

// flushLocked materializes the table, replaying deferred snapshots in
// arrival order. Every reader goes through it.
func (c *Cache) flushLocked() {
	if c.materialized {
		return
	}
	c.materialized = true
	pending := c.pending
	c.pending = nil
	c.pendingN = 0
	if len(pending) == 0 {
		return
	}
	if len(c.peers) == 0 {
		// Size the table for the largest snapshot so the first merge
		// does not rehash its way up.
		max := 0
		for _, l := range pending {
			if len(l) > max {
				max = len(l)
			}
		}
		c.peers = make(map[string]proto.PeerInfo, max)
	}
	for _, l := range pending {
		c.mergeLocked(l)
	}
}

// Observe records a ping round-trip sample for a live peer.
func (c *Cache) Observe(id string, rtt time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	if _, ok := c.peers[id]; ok && !c.dead[id] {
		c.lat.Observe(id, rtt)
		c.rankedValid = false
	}
}

// MarkDead hides a peer that failed to answer a reservation or ping
// (§4.2 step 5: "nodes that have not responded before a given timeout
// are marked as dead"). Its latency history is forgotten — a rebooted
// host re-measures from scratch.
func (c *Cache) MarkDead(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	if _, ok := c.peers[id]; ok && !c.dead[id] {
		c.rankedValid = false
		c.live--
	}
	c.lat.Forget(id)
	if c.dead == nil {
		c.dead = make(map[string]bool)
	}
	c.dead[id] = true
}

// Dead reports whether a peer is currently marked dead.
func (c *Cache) Dead(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	return c.dead[id]
}

// Size returns the number of live cached peers.
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	return c.live
}

// Latency returns the current latency estimate for a peer.
func (c *Cache) Latency(id string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	return c.lat.Estimate(id)
}

// IDs returns the live cached peer IDs sorted by ID. The order matters
// for reproducibility: the ping loop issues probes in this order, and
// each probe consumes draws from the seeded nonce and network-jitter
// sources — map-iteration order here would leak the runtime's map
// randomization into virtual timelines and break bit-for-bit
// simulation replay.
func (c *Cache) IDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	out := make([]string, 0, c.live)
	for id := range c.peers {
		if !c.dead[id] {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Peer returns the cached info for a live peer.
func (c *Cache) Peer(id string) (proto.PeerInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	if c.dead[id] {
		return proto.PeerInfo{}, false
	}
	p, ok := c.peers[id]
	return p, ok
}

// Ranked returns all live cached peers sorted by ascending measured
// latency; unmeasured peers sort last (the booking step may still probe
// them). Dead peers are evicted from the reply. The ordering is
// memoized: a call that follows no cache mutation costs one O(n) copy
// instead of a full re-sort. The returned slice is the caller's to
// keep.
func (c *Cache) Ranked() []RankedPeer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	if !c.rankedValid {
		c.rebuildRankedLocked()
	}
	out := make([]RankedPeer, len(c.ranked))
	copy(out, c.ranked)
	return out
}

// RankedView is Ranked without the defensive copy: it returns the
// memoized slice itself. The slice is read-only and stable — cache
// mutations build a fresh slice rather than editing the memoized one in
// place — so a caller that only iterates (the booking step builds its
// candidate list from it on every submission) sees a consistent
// snapshot and saves an O(peers) copy per request. Callers that keep or
// mutate the result must use Ranked.
func (c *Cache) RankedView() []RankedPeer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	if !c.rankedValid {
		c.rebuildRankedLocked()
	}
	return c.ranked
}

// rebuildRankedLocked recomputes the memoized ordering into a fresh
// slice (never in place: outstanding RankedView snapshots stay valid).
func (c *Cache) rebuildRankedLocked() {
	ids := make([]string, 0, c.live)
	for id := range c.peers {
		if !c.dead[id] {
			ids = append(ids, id)
		}
	}
	sorted := c.lat.Rank(ids)
	ranked := make([]RankedPeer, 0, len(sorted))
	for _, id := range sorted {
		ranked = append(ranked, RankedPeer{
			Info:    c.peers[id],
			Latency: c.lat.Estimate(id),
		})
	}
	c.ranked = ranked
	c.rankedValid = true
}

// RankedPeer pairs a cached peer with its current latency estimate.
type RankedPeer struct {
	Info    proto.PeerInfo
	Latency time.Duration
}
