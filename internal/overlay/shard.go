package overlay

// Shard assignment for the federated supernode tier. The membership
// space is partitioned across K supernodes by rendezvous (highest-
// random-weight) hashing on the host ID: every (host, shard) pair gets
// an independent pseudo-random score and the host's home shard is the
// argmax. Rendezvous hashing gives the three properties the federation
// needs without any coordination state:
//
//   - determinism: every daemon computes the same assignment from
//     nothing but the host ID and K, so peers find their home shard
//     with zero lookups;
//   - balance: scores are i.i.d. across shards, so shard populations
//     concentrate tightly around N/K (within a few percent at 10k
//     hosts);
//   - minimal reshuffle: growing K to K+1 moves exactly the hosts whose
//     new top score belongs to the added shard (≈ 1/(K+1) of them);
//     every other host keeps its shard, so a federation resize does not
//     stampede the whole overlay through re-registration.

// shardSalt decorrelates the per-shard score streams: odd multiplier
// (the 64-bit golden ratio) keeps the lattice full-period.
const shardSalt = 0x9e3779b97f4a7c15

// ShardAssign returns the home shard of a host in a K-shard federation
// (0 when K <= 1). It is a pure function of (hostID, k).
func ShardAssign(hostID string, k int) int {
	if k <= 1 {
		return 0
	}
	h := fnv64(hostID)
	best, bestScore := 0, splitmix64(h)
	for s := 1; s < k; s++ {
		if score := splitmix64(h + uint64(s)*shardSalt); score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// fnv64 is the FNV-1a hash of s (inlined to avoid the hash.Hash64
// interface allocation on a per-registration path).
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// permutation. Used both for rendezvous scores and to seed the
// per-flow jitter streams of the simulated network.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
