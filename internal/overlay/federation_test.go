package overlay

import (
	"fmt"
	"testing"
	"time"

	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// fedWorld boots a K-member federation on one flat site, returning the
// members in shard order. The caller drives the scheduler.
func fedWorld(t *testing.T, s *vtime.Scheduler, n *simnet.Net, k int) ([]*Supernode, []string) {
	t.Helper()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		addrs[i] = fmt.Sprintf("fsn%d:8800", i)
	}
	sns := make([]*Supernode, k)
	for i := 0; i < k; i++ {
		sns[i] = NewSupernode(s, n.Node(fmt.Sprintf("fsn%d", i)), SupernodeConfig{
			Addr: addrs[i], Shard: i, Federation: addrs,
			GossipInterval: 100 * time.Millisecond,
		})
	}
	return sns, addrs
}

func fedNet(t *testing.T, k int, extra ...string) (*vtime.Scheduler, *simnet.Net) {
	t.Helper()
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	hostSite := map[string]string{}
	for i := 0; i < k; i++ {
		hostSite[fmt.Sprintf("fsn%d", i)] = "hub"
	}
	for _, h := range extra {
		hostSite[h] = "edge"
	}
	n := simnet.New(s, &simnet.StaticTopology{HostSite: hostSite, DefLat: time.Millisecond},
		simnet.Config{Seed: 11, NICBps: 1e9})
	return s, n
}

// TestGossipConvergesMergedViews: peers registered at different shards
// become visible in every member's merged view within a few gossip
// rounds, and the propagation-staleness samples are recorded.
func TestGossipConvergesMergedViews(t *testing.T) {
	const k = 4
	hosts := []string{"h-a", "h-b", "h-c", "h-d", "h-e", "h-f"}
	s, n := fedNet(t, k, hosts...)
	sns, addrs := fedWorld(t, s, n, k)
	s.Go("main", func() {
		for _, sn := range sns {
			if err := sn.Start(); err != nil {
				t.Errorf("start: %v", err)
				return
			}
		}
		// Register every host at its home shard, like MPDs do.
		for _, h := range hosts {
			home := ShardAssign(h, k)
			if _, err := RegisterWith(n.Node(h), addrs[home], peer(h), time.Second); err != nil {
				t.Errorf("register %s at shard %d: %v", h, home, err)
			}
		}
		s.Sleep(2 * time.Second) // >> log2(4) gossip rounds at 100ms
		for _, sn := range sns {
			sn.Close()
		}
	})
	s.Wait()
	for i, sn := range sns {
		if got := sn.MergedCount(); got != len(hosts) {
			t.Errorf("shard %d merged view has %d entries, want %d", i, got, len(hosts))
		}
		snap := sn.Snapshot()
		seen := map[string]int{}
		for _, p := range snap {
			seen[p.ID]++
		}
		for _, h := range hosts {
			if seen[h] != 1 {
				t.Errorf("shard %d lists %s %d times", i, h, seen[h])
			}
		}
	}
	var stale int64
	for _, sn := range sns {
		stale += sn.Stats().StaleSamples
	}
	if stale == 0 {
		t.Error("no staleness samples across the federation")
	}
}

// TestRegisterRedirectsToHomeShard: an unforced Register at the wrong
// member answers ShardRedirect naming the home member, and the entry is
// NOT accepted locally; a forced one is fostered.
func TestRegisterRedirectsToHomeShard(t *testing.T) {
	const k = 3
	s, n := fedNet(t, k, "h-x")
	sns, addrs := fedWorld(t, s, n, k)
	home := ShardAssign("h-x", k)
	wrong := (home + 1) % k
	s.Go("main", func() {
		for _, sn := range sns {
			if err := sn.Start(); err != nil {
				t.Errorf("start: %v", err)
				return
			}
		}
		reply, err := RegisterRaw(n.Node("h-x"), addrs[wrong], peer("h-x"), false, time.Second)
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		defer reply.Release()
		if got := proto.Peek(reply.Payload); got != proto.TShardRedirect {
			t.Errorf("unforced register at wrong shard answered %v, want shardredirect", got)
			return
		}
		var rd proto.ShardRedirect
		if err := proto.DecodeInto(reply.Payload, &rd); err != nil {
			t.Errorf("decode redirect: %v", err)
			return
		}
		if rd.Shard != home || rd.Addr != addrs[home] {
			t.Errorf("redirect points at shard %d %q, want %d %q", rd.Shard, rd.Addr, home, addrs[home])
		}
		// Forced: the wrong member fosters.
		if _, err := RegisterRaw(n.Node("h-x"), addrs[wrong], peer("h-x"), true, time.Second); err != nil {
			t.Errorf("forced register: %v", err)
		}
		for _, sn := range sns {
			sn.Close()
		}
	})
	s.Wait()
	if got := sns[wrong].PeerCount(); got != 1 {
		t.Errorf("foster shard owns %d entries, want 1", got)
	}
	st := sns[wrong].Stats()
	if st.Redirects != 1 || st.Fostered != 1 {
		t.Errorf("stats = %d redirects / %d fostered, want 1 / 1", st.Redirects, st.Fostered)
	}
}

// TestDeadShardSnapshotExpires: when a member dies permanently, its
// snapshot ages out of the survivors' merged views after the TTL — a
// dead shard must not keep its (equally dead, never-failed-over) peers
// listed forever. The healthy member's own entries survive.
func TestDeadShardSnapshotExpires(t *testing.T) {
	const k = 2
	s, n := fedNet(t, k, "h-dead", "h-live")
	addrs := []string{"fsn0:8800", "fsn1:8800"}
	sns := make([]*Supernode, k)
	for i := 0; i < k; i++ {
		sns[i] = NewSupernode(s, n.Node(fmt.Sprintf("fsn%d", i)), SupernodeConfig{
			Addr: addrs[i], Shard: i, Federation: addrs,
			GossipInterval: 100 * time.Millisecond,
			TTL:            5 * time.Second, SweepInterval: time.Second,
		})
	}
	// Register one peer per shard, regardless of rendezvous homes
	// (forced registration keeps the test independent of the hash).
	deadShard := 0
	liveShard := 1
	s.Go("main", func() {
		for _, sn := range sns {
			if err := sn.Start(); err != nil {
				t.Errorf("start: %v", err)
				return
			}
		}
		if _, err := RegisterRaw(n.Node("h-dead"), addrs[deadShard], peer("h-dead"), true, time.Second); err != nil {
			t.Errorf("register h-dead: %v", err)
		}
		if _, err := RegisterRaw(n.Node("h-live"), addrs[liveShard], peer("h-live"), true, time.Second); err != nil {
			t.Errorf("register h-live: %v", err)
		}
		s.Sleep(time.Second) // gossip: both members see both peers
		if got := sns[liveShard].MergedCount(); got != 2 {
			t.Errorf("pre-death merged view has %d entries, want 2", got)
		}
		// The dead shard's host vanishes for good; its peer sends no
		// more alives either.
		n.FailHost(fmt.Sprintf("fsn%d", deadShard))
		for i := 0; i < 10; i++ {
			s.Sleep(time.Second)
			if known, err := SendAlive(n.Node("h-live"), addrs[liveShard], "h-live", time.Second); err != nil || !known {
				t.Errorf("alive h-live: known=%v err=%v", known, err)
			}
		}
		if got := sns[liveShard].MergedCount(); got != 1 {
			t.Errorf("survivor still serves %d entries long past the dead shard's TTL, want 1", got)
		}
		for _, p := range sns[liveShard].Snapshot() {
			if p.ID == "h-dead" {
				t.Error("the dead shard's peer is still listed")
			}
		}
		for _, sn := range sns {
			sn.Close()
		}
	})
	s.Wait()
}

// TestFosterEntryYieldsToHomeRegistration: a host fostered on shard B
// re-registers at its revived home shard A; both snapshots list it, and
// every merged view resolves the conflict to exactly one entry (the
// fresher home claim). After B's TTL sweep expires the foster copy, the
// federation converges back to home ownership everywhere.
func TestFosterEntryYieldsToHomeRegistration(t *testing.T) {
	const k = 2
	s, n := fedNet(t, k, "h-y")
	addrs := []string{"fsn0:8800", "fsn1:8800"}
	sns := make([]*Supernode, k)
	for i := 0; i < k; i++ {
		sns[i] = NewSupernode(s, n.Node(fmt.Sprintf("fsn%d", i)), SupernodeConfig{
			Addr: addrs[i], Shard: i, Federation: addrs,
			GossipInterval: 100 * time.Millisecond,
			TTL:            3 * time.Second, SweepInterval: time.Second,
		})
	}
	home := ShardAssign("h-y", k)
	foster := 1 - home
	s.Go("main", func() {
		for _, sn := range sns {
			if err := sn.Start(); err != nil {
				t.Errorf("start: %v", err)
				return
			}
		}
		// Foster first (home "was down"), then the home member answers
		// again and the peer re-registers there.
		if _, err := RegisterRaw(n.Node("h-y"), addrs[foster], peer("h-y"), true, time.Second); err != nil {
			t.Errorf("foster register: %v", err)
		}
		s.Sleep(500 * time.Millisecond)
		if _, err := RegisterWith(n.Node("h-y"), addrs[home], peer("h-y"), time.Second); err != nil {
			t.Errorf("home register: %v", err)
		}
		s.Sleep(time.Second)
		// Both snapshots still list it; merged views must dedup to one.
		for i, sn := range sns {
			if got := sn.MergedCount(); got != 1 {
				t.Errorf("mid-conflict shard %d merged view has %d entries, want 1", i, got)
			}
		}
		// Keep the home entry alive (the MPD's keep-alive loop) while the
		// untouched foster copy ages out of shard B's table.
		for i := 0; i < 5; i++ {
			s.Sleep(time.Second)
			if known, err := SendAlive(n.Node("h-y"), addrs[home], "h-y", time.Second); err != nil || !known {
				t.Errorf("alive at home: known=%v err=%v", known, err)
			}
		}
		for _, sn := range sns {
			sn.Close()
		}
	})
	s.Wait()
	if got := sns[foster].PeerCount(); got != 0 {
		t.Errorf("foster shard still owns %d entries after TTL", got)
	}
	if got := sns[home].PeerCount(); got != 1 {
		t.Errorf("home shard owns %d entries, want 1", got)
	}
	for i, sn := range sns {
		if got := sn.MergedCount(); got != 1 {
			t.Errorf("healed shard %d merged view has %d entries, want 1", i, got)
		}
	}
}
