package proto

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, msg any, want Type) any {
	t.Helper()
	b, err := Marshal(msg)
	if err != nil {
		t.Fatalf("marshal %T: %v", msg, err)
	}
	tp, got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("unmarshal %T: %v", msg, err)
	}
	if tp != want {
		t.Fatalf("type = %v, want %v", tp, want)
	}
	if !reflect.DeepEqual(msg, got) {
		t.Fatalf("round trip of %T:\n got %+v\nwant %+v", msg, got, msg)
	}
	return got
}

func TestRoundTripAll(t *testing.T) {
	pi := PeerInfo{ID: "grelon-1.nancy", Site: "nancy",
		MPDAddr: "grelon-1.nancy:9000", RSAddr: "grelon-1.nancy:9001"}
	roundTrip(t, &Register{Peer: pi}, TRegister)
	roundTrip(t, &PeerList{Peers: []PeerInfo{pi, {ID: "x"}}}, TPeerList)
	roundTrip(t, &PeerList{}, TPeerList)
	roundTrip(t, &Alive{ID: "grelon-1.nancy"}, TAlive)
	roundTrip(t, &AliveAck{}, TAliveAck)
	roundTrip(t, &FetchPeers{}, TFetchPeers)
	roundTrip(t, &Ping{Nonce: 0xABCDEF}, TPing)
	roundTrip(t, &Pong{Nonce: 42}, TPong)
	roundTrip(t, &Reserve{Key: "k", JobID: "j", Submitter: pi, N: 600}, TReserve)
	roundTrip(t, &ReserveOK{Key: "k", P: 4}, TReserveOK)
	roundTrip(t, &ReserveNOK{Key: "k", Reason: "J exceeded"}, TReserveNOK)
	roundTrip(t, &Cancel{Key: "k"}, TCancel)
	roundTrip(t, &CancelAck{Key: "k"}, TCancelAck)
	roundTrip(t, &Prepare{
		Key: "k", JobID: "j", Program: "hostname", Args: []string{"-v"},
		N: 3, R: 2,
		Table: []Slot{
			{Rank: 0, Replica: 0, Global: 0, HostID: "h0", Addr: "h0:40000"},
			{Rank: 0, Replica: 1, Global: 3, HostID: "h1", Addr: "h1:40003"},
		},
		SubmitterMPD: "frontal.nancy:9000",
		Deadline:     90 * time.Second,
		Algorithms:   [5]int{1, 0, 1, 1, 0},
	}, TPrepare)
	roundTrip(t, &Ready{Key: "k", OK: true}, TReady)
	roundTrip(t, &Ready{Key: "k", OK: false, Reason: "bad key"}, TReady)
	roundTrip(t, &Start{Key: "k"}, TStart)
	roundTrip(t, &StartAck{Key: "k"}, TStartAck)
	roundTrip(t, &JobDone{JobID: "j", HostID: "h0", Results: []SlotResult{
		{Rank: 0, Replica: 0, OK: true, Output: []byte("grelon-1.nancy")},
		{Rank: 1, Replica: 0, OK: false, Err: "panic"},
	}}, TJobDone)
}

func TestEmptySlicesSurvive(t *testing.T) {
	// Prepare with empty table and args must round trip to empty (not nil
	// mismatch panics in reflect.DeepEqual — so we compare fields).
	m := &Prepare{Key: "k", JobID: "j", Program: "p", N: 1, R: 1}
	b, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	p := got.(*Prepare)
	if len(p.Table) != 0 || len(p.Args) != 0 || p.Key != "k" {
		t.Fatalf("got %+v", p)
	}
}

func TestUnmarshalUnknownType(t *testing.T) {
	if _, _, err := Unmarshal([]byte{0xFF}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestMarshalUnknownStruct(t *testing.T) {
	if _, err := Marshal(struct{}{}); err == nil {
		t.Fatal("unknown struct accepted")
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	b := MustMarshal(&Ping{Nonce: 1})
	b = append(b, 0xAA)
	if _, _, err := Unmarshal(b); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestFuzzUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	if TReserve.String() != "reserve" || Type(200).String() != "type(200)" {
		t.Fatal("type names wrong")
	}
}
