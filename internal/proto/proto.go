// Package proto defines the control-plane messages of the P2P-MPI
// middleware and their binary encoding: supernode membership (register,
// alive, fetch), MPD peer pings, the RS reservation handshake and the
// two-phase job launch. One frame carries one message; the first byte is
// the message type.
package proto

import (
	"fmt"
	"time"

	"p2pmpi/internal/wire"
)

// Type identifies a control message.
type Type uint8

// Control message types.
const (
	TInvalid Type = iota
	// Supernode membership.
	TRegister
	TPeerList
	TAlive
	TAliveAck
	TFetchPeers
	// MPD latency probe (the paper's application-level "ping").
	TPing
	TPong
	// Reservation Service brokering (§4.2 steps 3-5).
	TReserve
	TReserveOK
	TReserveNOK
	TCancel
	TCancelAck
	// Two-phase job launch (§4.2 steps 6-8).
	TPrepare
	TReady
	TStart
	TStartAck
	// Completion report back to the submitter.
	TJobDone
	// Mid-run failure detection: job-level heartbeat.
	TJobPing
	TJobPong
	// Federated supernode tier: gossip digest exchange between shards
	// and the registration redirect toward a peer's home shard.
	TDigest
	TShardDelta
	TShardRedirect
	// Preemption: checkpoint-kill a running preemptable job.
	TKillJob
	TKillAck
)

// String returns the mnemonic of the message type.
func (t Type) String() string {
	names := [...]string{"invalid", "register", "peerlist", "alive",
		"aliveack", "fetchpeers", "ping", "pong", "reserve", "reserveok",
		"reservenok", "cancel", "cancelack", "prepare", "ready", "start",
		"startack", "jobdone", "jobping", "jobpong",
		"digest", "sharddelta", "shardredirect", "killjob", "killack"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// PeerInfo advertises one peer: its identity and service addresses.
type PeerInfo struct {
	ID      string // host identity (e.g. "grelon-12.nancy")
	Site    string // site name, for reporting only
	MPDAddr string // where the MPD listens
	RSAddr  string // where the Reservation Service listens
}

func (p PeerInfo) encode(e *wire.Encoder) {
	e.String(p.ID).String(p.Site).String(p.MPDAddr).String(p.RSAddr)
}

func decodePeerInfo(d *wire.Decoder) PeerInfo {
	return PeerInfo{ID: d.String(), Site: d.String(), MPDAddr: d.String(), RSAddr: d.String()}
}

// Register announces a peer to the supernode; the reply is a PeerList
// (or, in a federation, a ShardRedirect toward the peer's home shard).
type Register struct {
	Peer PeerInfo
	// Forced marks a failover registration: the peer's home-shard
	// supernode is unreachable and it is asking this (foreign) shard to
	// foster it. An unforced Register at the wrong shard is answered
	// with a ShardRedirect instead of being accepted.
	Forced bool
}

// PeerList is the supernode's host list snapshot.
type PeerList struct {
	Peers []PeerInfo
}

// Alive refreshes a peer's last-seen stamp; the reply is AliveAck.
type Alive struct {
	ID string
}

// AliveAck acknowledges an Alive. Known reports whether the answering
// supernode actually lists the peer: a false answer tells the sender
// its entry expired (or lives on another shard) and an immediate
// re-registration is worth more than waiting for the next full
// re-register tick.
type AliveAck struct {
	Known bool
}

// FetchPeers requests a fresh PeerList.
type FetchPeers struct{}

// Ping is the application-level latency probe (§4.1: not ICMP).
type Ping struct {
	Nonce uint64
}

// Pong answers a Ping, echoing its nonce.
type Pong struct {
	Nonce uint64
}

// Reserve asks a remote RS to hold one slot of its host for a job,
// identified by a unique hash key (§4.2 step 3).
type Reserve struct {
	Key       string
	JobID     string
	Submitter PeerInfo
	// N is the total process count of the application; the remote host
	// uses it to report its capped capacity.
	N int
}

// ReserveOK grants a reservation and reports the host's P setting
// (§4.2 step 4).
type ReserveOK struct {
	Key string
	P   int
}

// ReserveNOK declines a reservation.
type ReserveNOK struct {
	Key    string
	Reason string
}

// Cancel releases a reservation that will not be used (§4.2 step 6).
type Cancel struct {
	Key string
}

// CancelAck acknowledges a Cancel.
type CancelAck struct {
	Key string
}

// Slot describes one MPI process placement in the launch table.
type Slot struct {
	// Rank is the MPI rank (0..N-1); Replica its copy number (0..R-1).
	Rank    int
	Replica int
	// Global is the job-wide slot index (0..N*R-1), used to derive the
	// process's listen port.
	Global int
	// HostID is the peer hosting this slot; Addr is where the process
	// will listen for MPI traffic.
	HostID string
	Addr   string
}

func (s Slot) encode(e *wire.Encoder) {
	e.Int(s.Rank).Int(s.Replica).Int(s.Global).String(s.HostID).String(s.Addr)
}

func decodeSlot(d *wire.Decoder) Slot {
	return Slot{Rank: d.Int(), Replica: d.Int(), Global: d.Int(),
		HostID: d.String(), Addr: d.String()}
}

// Prepare is phase one of the launch (§4.2 steps 6-7): the remote MPD
// verifies the key against its RS, checks its gatekeeper limits, starts
// the local processes' listeners and replies Ready.
type Prepare struct {
	Key     string
	JobID   string
	Program string
	Args    []string
	N, R    int
	// Table is the full placement; each MPD picks the slots whose HostID
	// matches its own.
	Table []Slot
	// SubmitterMPD is where JobDone must be reported.
	SubmitterMPD string
	// Deadline bounds the whole job in virtual/real time (0 = none).
	Deadline time.Duration
	// Algorithms selects the collective implementations for the job's
	// communicators: bcast, reduce, allreduce, allgather, alltoall
	// selectors in that order (zero = library defaults).
	Algorithms [5]int
	// Preemptable marks the job killable mid-run: the hosting MPD arms
	// a kill channel per local process so a later KillJob can
	// checkpoint-stop it (scheduler-driven preemption).
	Preemptable bool
}

// Ready is the Prepare response.
type Ready struct {
	Key    string
	OK     bool
	Reason string
}

// Start is phase two: all hosts reported Ready, run the program.
type Start struct {
	Key string
}

// StartAck acknowledges a Start.
type StartAck struct {
	Key string
}

// SlotResult carries one process's outcome and captured output.
type SlotResult struct {
	Rank    int
	Replica int
	OK      bool
	Err     string
	Output  []byte
}

// JobDone reports the completion of all of one host's slots.
type JobDone struct {
	JobID   string
	HostID  string
	Results []SlotResult
}

// JobPing asks an MPD whether it still hosts a given job — the mid-run
// failure detector's process-level heartbeat. A transport-level Ping
// cannot distinguish a healthy host from one that crashed and rebooted
// mid-run: the reboot restarts the daemon but not the processes, so
// only the hosting MPD's own job table can answer.
type JobPing struct {
	Nonce uint64
	JobID string
}

// JobPong answers a JobPing; Known reports whether the job is still
// alive on the answering host.
type JobPong struct {
	Nonce uint64
	Known bool
}

// Digest opens one gossip exchange between federation members: the
// sender's shard index and the membership version it knows for every
// shard (its own version is authoritative; the others are whatever its
// snapshots carry, zero when it has none). The reply is a ShardDelta
// holding a snapshot of every shard the sender trails on.
type Digest struct {
	From     int
	Versions []uint64
}

// ShardState is one shard's membership snapshot inside a ShardDelta:
// the registrar's shard index, the version of its owned set, the
// wall/virtual instant (unix nanoseconds) at which that version was
// created by its owner — forwarded unchanged through transitive gossip
// so receivers can measure propagation staleness — and the entries
// themselves with their last-seen stamps (unix nanoseconds, used to
// break ties when a host transiently appears in two shards during a
// failover).
type ShardState struct {
	Shard   int
	Version uint64
	Stamp   int64
	Peers   []PeerInfo
	Seen    []int64
}

// ShardDelta answers a Digest: one ShardState per shard on which the
// digest's sender was behind the replier's knowledge. An empty delta
// means the peers agree.
type ShardDelta struct {
	Shards []ShardState
}

// ShardRedirect answers an unforced Register that arrived at the wrong
// shard: the peer's home shard index and the address of the supernode
// that owns it.
type ShardRedirect struct {
	Shard int
	Addr  string
}

// KillJob asks an MPD to checkpoint-kill its local slots of a running
// preemptable job, identified by the launch key. An unknown key — the
// job already finished, or the host crashed and rebooted — is
// acknowledged anyway: the kill is idempotent.
type KillJob struct {
	Key string
}

// KillAck acknowledges a KillJob.
type KillAck struct {
	Key string
}
