package proto

import (
	"testing"
)

// The zero-alloc contract of the hot codec paths is enforced, not
// asserted: these tests fail if a change reintroduces per-frame garbage
// on the encode-into-scratch or decode-into-struct paths that every
// steady-state protocol exchange (latency probes, detector heartbeats,
// reservation handshakes) rides on.

func TestAppendMarshalZeroAlloc(t *testing.T) {
	scratch := make([]byte, 0, 128)
	msgs := []any{
		&Ping{Nonce: 0xdeadbeef},
		&Pong{Nonce: 0xdeadbeef},
		&JobPing{Nonce: 7, JobID: "job-42"},
		&ReserveOK{Key: "0123456789abcdef", P: 4},
		&Start{Key: "0123456789abcdef"},
	}
	for _, msg := range msgs {
		msg := msg
		allocs := testing.AllocsPerRun(200, func() {
			var err error
			scratch, err = AppendMarshal(scratch[:0], msg)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("AppendMarshal(%T): %v allocs/op, want 0", msg, allocs)
		}
	}
}

func TestDecodeIntoZeroAllocSteadyState(t *testing.T) {
	// Steady state: the same logical message arrives repeatedly (a
	// heartbeat). String fields must keep their existing backing when
	// the bytes match, so decoding costs nothing.
	frames := map[string][]byte{
		"ping":      MustMarshal(&Ping{Nonce: 99}),
		"jobping":   MustMarshal(&JobPing{Nonce: 3, JobID: "job-42"}),
		"reserveok": MustMarshal(&ReserveOK{Key: "0123456789abcdef", P: 2}),
		"ready":     MustMarshal(&Ready{Key: "0123456789abcdef", OK: true}),
		"jobpong":   MustMarshal(&JobPong{Nonce: 3, Known: true}),
	}
	targets := map[string]any{
		"ping":      &Ping{},
		"jobping":   &JobPing{},
		"reserveok": &ReserveOK{},
		"ready":     &Ready{},
		"jobpong":   &JobPong{},
	}
	for name, frame := range frames {
		msg := targets[name]
		if err := DecodeInto(frame, msg); err != nil { // warm the strings
			t.Fatalf("%s: %v", name, err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := DecodeInto(frame, msg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("DecodeInto(%s): %v allocs/op, want 0", name, allocs)
		}
	}
}

func TestRoundTripZeroAllocSteadyState(t *testing.T) {
	// Full round trip — encode into scratch, decode into a reused
	// struct — as the daemons' request/reply loops run it.
	scratch := make([]byte, 0, 128)
	req := &JobPing{Nonce: 12345, JobID: "job-42"}
	var got JobPing
	scratch, _ = AppendMarshal(scratch[:0], req)
	if err := DecodeInto(scratch, &got); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		scratch, err = AppendMarshal(scratch[:0], req)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(scratch, &got); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("round trip: %v allocs/op, want 0", allocs)
	}
	if got != *req {
		t.Fatalf("round trip mutated the message: %+v vs %+v", got, *req)
	}
}

func TestUnmarshalPeerListReusesScratch(t *testing.T) {
	list := &PeerList{Peers: []PeerInfo{
		{ID: "a.site", Site: "site", MPDAddr: "a.site:9000", RSAddr: "a.site:9001"},
		{ID: "b.site", Site: "site", MPDAddr: "b.site:9000", RSAddr: "b.site:9001"},
	}}
	frame := MustMarshal(list)
	scratch := make([]PeerInfo, 0, 8)
	out, err := UnmarshalPeerList(frame, scratch[:0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != list.Peers[0] || out[1] != list.Peers[1] {
		t.Fatalf("decoded %+v", out)
	}
	if &out[0] != &scratch[:1][0] {
		t.Fatal("decode did not reuse the scratch backing")
	}
	// The intern trick: one string allocation per frame, however many
	// string fields the host list carries (plus the slice growth when
	// the scratch is too small, which reuse amortizes away).
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := UnmarshalPeerList(frame, scratch[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("UnmarshalPeerList: %v allocs/op, want <= 1 (the intern copy)", allocs)
	}
}

func BenchmarkProtoRoundTrip(b *testing.B) {
	b.ReportAllocs()
	scratch := make([]byte, 0, 128)
	req := &JobPing{Nonce: 12345, JobID: "job-42"}
	var got JobPing
	for i := 0; i < b.N; i++ {
		scratch, _ = AppendMarshal(scratch[:0], req)
		if err := DecodeInto(scratch, &got); err != nil {
			b.Fatal(err)
		}
	}
}
