package proto

import (
	"bytes"
	"testing"
)

// The decoders sit on the untrusted edge of the daemons: every frame a
// supernode or MPD receives goes through Unmarshal, UnmarshalPeerList or
// DecodeInto before anything else looks at it. The fuzz targets pin the
// two safety properties the pooled zero-alloc paths depend on:
//
//   - malformed frames error out; they never panic (no slice
//     over-reads, no unbounded make() from a hostile length prefix);
//   - decoded values never alias the input buffer, because receivers
//     release frames back to pooled transport buffers right after
//     decoding — an aliasing decode would corrupt silently when the
//     buffer is recycled.

// corpusFrames returns one well-formed frame per message type,
// including the federation frames, so the seed corpus reaches every
// decoder arm.
func corpusFrames() [][]byte {
	pi := PeerInfo{ID: "c01-1.s01", Site: "s01", MPDAddr: "c01-1.s01:9000", RSAddr: "c01-1.s01:9001"}
	msgs := []any{
		&Register{Peer: pi, Forced: true},
		&PeerList{Peers: []PeerInfo{pi, {ID: "b"}}},
		&Alive{ID: "c01-1.s01"},
		&AliveAck{Known: true},
		&FetchPeers{},
		&Ping{Nonce: 7}, &Pong{Nonce: 7},
		&Reserve{Key: "k", JobID: "j", Submitter: pi, N: 4},
		&ReserveOK{Key: "k", P: 2},
		&ReserveNOK{Key: "k", Reason: "full"},
		&Cancel{Key: "k"}, &CancelAck{Key: "k"},
		&Prepare{Key: "k", JobID: "j", Program: "hostname", Args: []string{"a"},
			N: 1, R: 1, Table: []Slot{{Rank: 0, Replica: 0, Global: 0, HostID: pi.ID, Addr: "a:1"}},
			SubmitterMPD: "f:9000", Preemptable: true},
		&Ready{Key: "k", OK: true},
		&Start{Key: "k"}, &StartAck{Key: "k"},
		&JobDone{JobID: "j", HostID: pi.ID, Results: []SlotResult{{OK: true, Output: []byte("x")}}},
		&JobPing{Nonce: 9, JobID: "j"}, &JobPong{Nonce: 9, Known: true},
		&Digest{From: 2, Versions: []uint64{3, 0, 9, 1}},
		&ShardDelta{Shards: []ShardState{{
			Shard: 1, Version: 9, Stamp: 123456789,
			Peers: []PeerInfo{pi}, Seen: []int64{42},
		}}},
		&ShardRedirect{Shard: 3, Addr: "snfed04.s02:8800"},
		&KillJob{Key: "k"}, &KillAck{Key: "k"},
	}
	out := make([][]byte, 0, len(msgs))
	for _, m := range msgs {
		out = append(out, MustMarshal(m))
	}
	return out
}

// FuzzUnmarshal: any byte string either decodes or errors — no panics —
// and whatever decodes must survive the input buffer being clobbered
// (no aliasing of the frame).
func FuzzUnmarshal(f *testing.F) {
	for _, frame := range corpusFrames() {
		f.Add(frame)
		if len(frame) > 1 {
			f.Add(frame[:len(frame)-1]) // truncation
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := append([]byte(nil), data...)
		_, msg, err := Unmarshal(buf)
		if err != nil {
			return
		}
		// Re-marshal, clobber the input, re-marshal again: a decode that
		// aliased buf would change its encoding.
		first, merr := Marshal(msg)
		if merr != nil {
			t.Fatalf("decoded %T does not re-marshal: %v", msg, merr)
		}
		firstCopy := append([]byte(nil), first...)
		for i := range buf {
			buf[i] ^= 0xff
		}
		second, merr := Marshal(msg)
		if merr != nil {
			t.Fatalf("re-marshal after clobber: %v", merr)
		}
		if !bytes.Equal(firstCopy, second) {
			t.Fatalf("decoded %T aliases its input buffer:\nbefore clobber %x\nafter  clobber %x",
				msg, firstCopy, second)
		}
	})
}

// FuzzUnmarshalPeerList: the host-list fast path (pooled scratch
// decode) must reject garbage without panicking and without aliasing.
func FuzzUnmarshalPeerList(f *testing.F) {
	pi := PeerInfo{ID: "c01-1.s01", Site: "s01", MPDAddr: "m:9000", RSAddr: "r:9001"}
	f.Add(MustMarshal(&PeerList{Peers: []PeerInfo{pi, {ID: "b", Site: "s02"}}}))
	f.Add(MustMarshal(&PeerList{}))
	f.Add([]byte{uint8(TPeerList), 0x7f}) // huge count prefix
	f.Add([]byte{uint8(TAlive)})          // wrong type
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := append([]byte(nil), data...)
		scratch := make([]PeerInfo, 0, 4)
		peers, err := UnmarshalPeerList(buf, scratch)
		if err != nil {
			return
		}
		snapshot := append([]PeerInfo(nil), peers...)
		for i := range buf {
			buf[i] ^= 0xff
		}
		for i := range peers {
			if peers[i] != snapshot[i] {
				t.Fatalf("peer %d aliases the input buffer: %+v != %+v", i, peers[i], snapshot[i])
			}
		}
	})
}

// FuzzDecodeInto: the fixed-shape reuse decoder (heartbeats, handshake
// echoes, shard redirects) across every supported target type. The
// reused strings must not alias the frame either.
func FuzzDecodeInto(f *testing.F) {
	for _, frame := range corpusFrames() {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := append([]byte(nil), data...)
		targets := []any{
			&Ping{}, &Pong{}, &Alive{}, &AliveAck{}, &FetchPeers{},
			&ReserveOK{}, &ReserveNOK{}, &Cancel{}, &CancelAck{},
			&Ready{}, &Start{}, &StartAck{}, &JobPing{}, &JobPong{},
			&ShardRedirect{}, &KillJob{}, &KillAck{},
		}
		for _, target := range targets {
			if err := DecodeInto(buf, target); err != nil {
				continue
			}
			first, merr := Marshal(target)
			if merr != nil {
				t.Fatalf("decoded %T does not re-marshal: %v", target, merr)
			}
			firstCopy := append([]byte(nil), first...)
			saved := append([]byte(nil), buf...)
			for i := range buf {
				buf[i] ^= 0xff
			}
			second, _ := Marshal(target)
			if !bytes.Equal(firstCopy, second) {
				t.Fatalf("%T decode aliases the input buffer", target)
			}
			copy(buf, saved) // restore for the remaining targets
		}
	})
}
