package proto

import (
	"fmt"

	"p2pmpi/internal/wire"
)

// Marshal encodes any proto message into a framed byte slice.
func Marshal(msg any) ([]byte, error) {
	e := wire.NewEncoder(64)
	switch m := msg.(type) {
	case *Register:
		e.U8(uint8(TRegister))
		m.Peer.encode(e)
	case *PeerList:
		e.U8(uint8(TPeerList))
		e.Int(len(m.Peers))
		for _, p := range m.Peers {
			p.encode(e)
		}
	case *Alive:
		e.U8(uint8(TAlive)).String(m.ID)
	case *AliveAck:
		e.U8(uint8(TAliveAck))
	case *FetchPeers:
		e.U8(uint8(TFetchPeers))
	case *Ping:
		e.U8(uint8(TPing)).U64(m.Nonce)
	case *Pong:
		e.U8(uint8(TPong)).U64(m.Nonce)
	case *Reserve:
		e.U8(uint8(TReserve)).String(m.Key).String(m.JobID)
		m.Submitter.encode(e)
		e.Int(m.N)
	case *ReserveOK:
		e.U8(uint8(TReserveOK)).String(m.Key).Int(m.P)
	case *ReserveNOK:
		e.U8(uint8(TReserveNOK)).String(m.Key).String(m.Reason)
	case *Cancel:
		e.U8(uint8(TCancel)).String(m.Key)
	case *CancelAck:
		e.U8(uint8(TCancelAck)).String(m.Key)
	case *Prepare:
		e.U8(uint8(TPrepare)).String(m.Key).String(m.JobID).String(m.Program)
		e.StringSlice(m.Args)
		e.Int(m.N).Int(m.R)
		e.Int(len(m.Table))
		for _, s := range m.Table {
			s.encode(e)
		}
		e.String(m.SubmitterMPD)
		e.Duration(m.Deadline)
		for _, a := range m.Algorithms {
			e.Int(a)
		}
	case *Ready:
		e.U8(uint8(TReady)).String(m.Key).Bool(m.OK).String(m.Reason)
	case *Start:
		e.U8(uint8(TStart)).String(m.Key)
	case *StartAck:
		e.U8(uint8(TStartAck)).String(m.Key)
	case *JobDone:
		e.U8(uint8(TJobDone)).String(m.JobID).String(m.HostID)
		e.Int(len(m.Results))
		for _, r := range m.Results {
			e.Int(r.Rank).Int(r.Replica).Bool(r.OK).String(r.Err).Blob(r.Output)
		}
	case *JobPing:
		e.U8(uint8(TJobPing)).U64(m.Nonce).String(m.JobID)
	case *JobPong:
		e.U8(uint8(TJobPong)).U64(m.Nonce).Bool(m.Known)
	default:
		return nil, fmt.Errorf("proto: cannot marshal %T", msg)
	}
	return e.Bytes(), nil
}

// MustMarshal is Marshal for known-good messages; it panics on error.
func MustMarshal(msg any) []byte {
	b, err := Marshal(msg)
	if err != nil {
		panic(err)
	}
	return b
}

// Unmarshal decodes one framed message, returning its type and a pointer
// to the decoded struct.
func Unmarshal(b []byte) (Type, any, error) {
	d := wire.NewDecoder(b)
	t := Type(d.U8())
	var msg any
	switch t {
	case TRegister:
		msg = &Register{Peer: decodePeerInfo(d)}
	case TPeerList:
		n := d.Int()
		if n < 0 || n > d.Remaining() {
			return t, nil, wire.ErrCorrupt
		}
		m := &PeerList{}
		if n > 0 {
			m.Peers = make([]PeerInfo, 0, n)
		}
		for i := 0; i < n; i++ {
			m.Peers = append(m.Peers, decodePeerInfo(d))
		}
		msg = m
	case TAlive:
		msg = &Alive{ID: d.String()}
	case TAliveAck:
		msg = &AliveAck{}
	case TFetchPeers:
		msg = &FetchPeers{}
	case TPing:
		msg = &Ping{Nonce: d.U64()}
	case TPong:
		msg = &Pong{Nonce: d.U64()}
	case TReserve:
		msg = &Reserve{Key: d.String(), JobID: d.String(),
			Submitter: decodePeerInfo(d), N: d.Int()}
	case TReserveOK:
		msg = &ReserveOK{Key: d.String(), P: d.Int()}
	case TReserveNOK:
		msg = &ReserveNOK{Key: d.String(), Reason: d.String()}
	case TCancel:
		msg = &Cancel{Key: d.String()}
	case TCancelAck:
		msg = &CancelAck{Key: d.String()}
	case TPrepare:
		m := &Prepare{Key: d.String(), JobID: d.String(), Program: d.String(),
			Args: d.StringSlice(), N: d.Int(), R: d.Int()}
		n := d.Int()
		if n < 0 || n > d.Remaining() {
			return t, nil, wire.ErrCorrupt
		}
		if n > 0 {
			m.Table = make([]Slot, 0, n)
		}
		for i := 0; i < n; i++ {
			m.Table = append(m.Table, decodeSlot(d))
		}
		m.SubmitterMPD = d.String()
		m.Deadline = d.Duration()
		for i := range m.Algorithms {
			m.Algorithms[i] = d.Int()
		}
		msg = m
	case TReady:
		msg = &Ready{Key: d.String(), OK: d.Bool(), Reason: d.String()}
	case TStart:
		msg = &Start{Key: d.String()}
	case TStartAck:
		msg = &StartAck{Key: d.String()}
	case TJobDone:
		m := &JobDone{JobID: d.String(), HostID: d.String()}
		n := d.Int()
		if n < 0 || n > d.Remaining()+1 {
			return t, nil, wire.ErrCorrupt
		}
		if n > 0 {
			m.Results = make([]SlotResult, 0, n)
		}
		for i := 0; i < n; i++ {
			m.Results = append(m.Results, SlotResult{
				Rank: d.Int(), Replica: d.Int(), OK: d.Bool(),
				Err: d.String(), Output: d.Blob(),
			})
		}
		msg = m
	case TJobPing:
		msg = &JobPing{Nonce: d.U64(), JobID: d.String()}
	case TJobPong:
		msg = &JobPong{Nonce: d.U64(), Known: d.Bool()}
	default:
		return t, nil, fmt.Errorf("proto: unknown message type %d", uint8(t))
	}
	if err := d.Finish(); err != nil {
		return t, nil, err
	}
	return t, msg, nil
}
