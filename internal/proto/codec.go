package proto

import (
	"fmt"

	"p2pmpi/internal/wire"
)

// Marshal encodes any proto message into a framed byte slice.
func Marshal(msg any) ([]byte, error) {
	return AppendMarshal(nil, msg)
}

// AppendMarshal encodes msg into dst (reusing its capacity) and returns
// the extended slice. With a caller-owned scratch buffer the encode is
// allocation-free steady-state, which is what the daemons' request/reply
// loops use: the simulated and TCP transports both copy the frame before
// returning from Send, so the scratch is immediately reusable.
func AppendMarshal(dst []byte, msg any) ([]byte, error) {
	var e wire.Encoder
	if dst == nil {
		dst = make([]byte, 0, 64)
	}
	e.Reset(dst)
	switch m := msg.(type) {
	case *Register:
		e.U8(uint8(TRegister))
		m.Peer.encode(&e)
		e.Bool(m.Forced)
	case *PeerList:
		e.U8(uint8(TPeerList))
		e.Int(len(m.Peers))
		for _, p := range m.Peers {
			p.encode(&e)
		}
	case *Alive:
		e.U8(uint8(TAlive)).String(m.ID)
	case *AliveAck:
		e.U8(uint8(TAliveAck)).Bool(m.Known)
	case *FetchPeers:
		e.U8(uint8(TFetchPeers))
	case *Ping:
		e.U8(uint8(TPing)).U64(m.Nonce)
	case *Pong:
		e.U8(uint8(TPong)).U64(m.Nonce)
	case *Reserve:
		e.U8(uint8(TReserve)).String(m.Key).String(m.JobID)
		m.Submitter.encode(&e)
		e.Int(m.N)
	case *ReserveOK:
		e.U8(uint8(TReserveOK)).String(m.Key).Int(m.P)
	case *ReserveNOK:
		e.U8(uint8(TReserveNOK)).String(m.Key).String(m.Reason)
	case *Cancel:
		e.U8(uint8(TCancel)).String(m.Key)
	case *CancelAck:
		e.U8(uint8(TCancelAck)).String(m.Key)
	case *Prepare:
		e.U8(uint8(TPrepare)).String(m.Key).String(m.JobID).String(m.Program)
		e.StringSlice(m.Args)
		e.Int(m.N).Int(m.R)
		e.Int(len(m.Table))
		for _, s := range m.Table {
			s.encode(&e)
		}
		e.String(m.SubmitterMPD)
		e.Duration(m.Deadline)
		for _, a := range m.Algorithms {
			e.Int(a)
		}
		e.Bool(m.Preemptable)
	case *Ready:
		e.U8(uint8(TReady)).String(m.Key).Bool(m.OK).String(m.Reason)
	case *Start:
		e.U8(uint8(TStart)).String(m.Key)
	case *StartAck:
		e.U8(uint8(TStartAck)).String(m.Key)
	case *JobDone:
		e.U8(uint8(TJobDone)).String(m.JobID).String(m.HostID)
		e.Int(len(m.Results))
		for _, r := range m.Results {
			e.Int(r.Rank).Int(r.Replica).Bool(r.OK).String(r.Err).Blob(r.Output)
		}
	case *JobPing:
		e.U8(uint8(TJobPing)).U64(m.Nonce).String(m.JobID)
	case *JobPong:
		e.U8(uint8(TJobPong)).U64(m.Nonce).Bool(m.Known)
	case *Digest:
		e.U8(uint8(TDigest)).Int(m.From)
		e.Int(len(m.Versions))
		for _, v := range m.Versions {
			e.U64(v)
		}
	case *ShardDelta:
		e.U8(uint8(TShardDelta))
		e.Int(len(m.Shards))
		for i := range m.Shards {
			appendShardState(&e, &m.Shards[i])
		}
	case *ShardRedirect:
		e.U8(uint8(TShardRedirect)).Int(m.Shard).String(m.Addr)
	case *KillJob:
		e.U8(uint8(TKillJob)).String(m.Key)
	case *KillAck:
		e.U8(uint8(TKillAck)).String(m.Key)
	default:
		return nil, fmt.Errorf("proto: cannot marshal %T", msg)
	}
	return e.Bytes(), nil
}

// AppendPeerListFrame encodes a TPeerList frame of count entries taken
// from peers starting at index start (wrapping modulo len(peers)),
// straight from the caller's table — no intermediate []PeerInfo copy,
// no allocation when dst has capacity. This is the supernode's reply
// builder: on a multi-thousand-host world every Register and FetchPeers
// answer is an O(world) frame, and building it used to copy the table
// twice per reply.
func AppendPeerListFrame(dst []byte, peers []PeerInfo, start, count int) []byte {
	var e wire.Encoder
	e.Reset(dst)
	e.U8(uint8(TPeerList))
	e.Int(count)
	if count > 0 {
		n := len(peers)
		for i := 0; i < count; i++ {
			peers[(start+i)%n].encode(&e)
		}
	}
	return e.Bytes()
}

// appendShardState encodes one shard snapshot: header, then the entries
// with their parallel last-seen stamps.
func appendShardState(e *wire.Encoder, s *ShardState) {
	e.Int(s.Shard)
	e.U64(s.Version)
	e.Varint(s.Stamp)
	e.Int(len(s.Peers))
	for i, p := range s.Peers {
		p.encode(e)
		var seen int64
		if i < len(s.Seen) {
			seen = s.Seen[i]
		}
		e.Varint(seen)
	}
}

// decodeShardState decodes one shard snapshot, validating the entry
// count against the remaining bytes.
func decodeShardState(d *wire.Decoder) (ShardState, bool) {
	st := ShardState{Shard: d.Int(), Version: d.U64(), Stamp: d.Varint()}
	n := d.Int()
	if n < 0 || n > d.Remaining() {
		return st, false
	}
	if n > 0 {
		st.Peers = make([]PeerInfo, 0, n)
		st.Seen = make([]int64, 0, n)
	}
	for i := 0; i < n; i++ {
		st.Peers = append(st.Peers, decodePeerInfo(d))
		st.Seen = append(st.Seen, d.Varint())
	}
	return st, d.Err() == nil
}

// MustMarshal is Marshal for known-good messages; it panics on error.
func MustMarshal(msg any) []byte {
	b, err := Marshal(msg)
	if err != nil {
		panic(err)
	}
	return b
}

// Peek returns the type of a framed message without decoding it.
func Peek(b []byte) Type {
	if len(b) == 0 {
		return TInvalid
	}
	return Type(b[0])
}

// Unmarshal decodes one framed message, returning its type and a pointer
// to the decoded struct.
func Unmarshal(b []byte) (Type, any, error) {
	d := wire.NewDecoder(b)
	t := Type(d.U8())
	var msg any
	switch t {
	case TRegister:
		msg = &Register{Peer: decodePeerInfo(d), Forced: d.Bool()}
	case TPeerList:
		n := d.Int()
		if n < 0 || n > d.Remaining() {
			return t, nil, wire.ErrCorrupt
		}
		m := &PeerList{}
		if n > 0 {
			d.InternStrings() // one string copy for the whole host list
			m.Peers = make([]PeerInfo, 0, n)
		}
		for i := 0; i < n; i++ {
			m.Peers = append(m.Peers, decodePeerInfo(d))
		}
		msg = m
	case TAlive:
		msg = &Alive{ID: d.String()}
	case TAliveAck:
		msg = &AliveAck{Known: d.Bool()}
	case TFetchPeers:
		msg = &FetchPeers{}
	case TPing:
		msg = &Ping{Nonce: d.U64()}
	case TPong:
		msg = &Pong{Nonce: d.U64()}
	case TReserve:
		msg = &Reserve{Key: d.String(), JobID: d.String(),
			Submitter: decodePeerInfo(d), N: d.Int()}
	case TReserveOK:
		msg = &ReserveOK{Key: d.String(), P: d.Int()}
	case TReserveNOK:
		msg = &ReserveNOK{Key: d.String(), Reason: d.String()}
	case TCancel:
		msg = &Cancel{Key: d.String()}
	case TCancelAck:
		msg = &CancelAck{Key: d.String()}
	case TPrepare:
		d.InternStrings() // the table repeats host IDs and addresses
		m := &Prepare{Key: d.String(), JobID: d.String(), Program: d.String(),
			Args: d.StringSlice(), N: d.Int(), R: d.Int()}
		n := d.Int()
		if n < 0 || n > d.Remaining() {
			return t, nil, wire.ErrCorrupt
		}
		if n > 0 {
			m.Table = make([]Slot, 0, n)
		}
		for i := 0; i < n; i++ {
			m.Table = append(m.Table, decodeSlot(d))
		}
		m.SubmitterMPD = d.String()
		m.Deadline = d.Duration()
		for i := range m.Algorithms {
			m.Algorithms[i] = d.Int()
		}
		m.Preemptable = d.Bool()
		msg = m
	case TReady:
		msg = &Ready{Key: d.String(), OK: d.Bool(), Reason: d.String()}
	case TStart:
		msg = &Start{Key: d.String()}
	case TStartAck:
		msg = &StartAck{Key: d.String()}
	case TJobDone:
		m := &JobDone{JobID: d.String(), HostID: d.String()}
		n := d.Int()
		if n < 0 || n > d.Remaining()+1 {
			return t, nil, wire.ErrCorrupt
		}
		if n > 0 {
			m.Results = make([]SlotResult, 0, n)
		}
		for i := 0; i < n; i++ {
			m.Results = append(m.Results, SlotResult{
				Rank: d.Int(), Replica: d.Int(), OK: d.Bool(),
				Err: d.String(), Output: d.Blob(),
			})
		}
		msg = m
	case TJobPing:
		msg = &JobPing{Nonce: d.U64(), JobID: d.String()}
	case TJobPong:
		msg = &JobPong{Nonce: d.U64(), Known: d.Bool()}
	case TDigest:
		m := &Digest{From: d.Int()}
		n := d.Int()
		if n < 0 || n > d.Remaining() {
			return t, nil, wire.ErrCorrupt
		}
		if n > 0 {
			m.Versions = make([]uint64, 0, n)
		}
		for i := 0; i < n; i++ {
			m.Versions = append(m.Versions, d.U64())
		}
		msg = m
	case TShardDelta:
		n := d.Int()
		if n < 0 || n > d.Remaining() {
			return t, nil, wire.ErrCorrupt
		}
		m := &ShardDelta{}
		if n > 0 {
			d.InternStrings() // snapshots are string-dense, like PeerList
			m.Shards = make([]ShardState, 0, n)
		}
		for i := 0; i < n; i++ {
			st, ok := decodeShardState(d)
			if !ok {
				return t, nil, wire.ErrCorrupt
			}
			m.Shards = append(m.Shards, st)
		}
		msg = m
	case TShardRedirect:
		msg = &ShardRedirect{Shard: d.Int(), Addr: d.String()}
	case TKillJob:
		msg = &KillJob{Key: d.String()}
	case TKillAck:
		msg = &KillAck{Key: d.String()}
	default:
		return t, nil, fmt.Errorf("proto: unknown message type %d", uint8(t))
	}
	if err := d.Finish(); err != nil {
		return t, nil, err
	}
	return t, msg, nil
}

// UnmarshalPeerList decodes a TPeerList frame, appending the entries to
// dst (reusing its capacity) and returning the extended slice. Hot
// membership paths use it with a pooled scratch slice so a cache
// refresh on a multi-thousand-host world does not allocate a fresh
// O(world) slice per reply.
func UnmarshalPeerList(b []byte, dst []PeerInfo) ([]PeerInfo, error) {
	d := wire.NewDecoder(b)
	if t := Type(d.U8()); t != TPeerList {
		return dst, fmt.Errorf("proto: expected peerlist, got %v", t)
	}
	n := d.Int()
	if n < 0 || n > d.Remaining() {
		return dst, wire.ErrCorrupt
	}
	if n > 0 {
		d.InternStrings()
	}
	for i := 0; i < n; i++ {
		dst = append(dst, decodePeerInfo(d))
	}
	if err := d.Finish(); err != nil {
		return dst, err
	}
	return dst, nil
}

// DecodeInto decodes a frame into a caller-provided message struct,
// reusing its allocations: string fields keep their existing backing
// when the decoded bytes match (see wire.Decoder.StringInto), so
// decoding a stream of stable values — heartbeats, handshake echoes —
// into a reused struct is allocation-free steady-state. Only the
// fixed-shape control messages are supported; list-carrying frames
// (PeerList, Prepare, JobDone) go through Unmarshal.
func DecodeInto(b []byte, msg any) error {
	d := wire.NewDecoder(b)
	t := Type(d.U8())
	var want Type
	switch m := msg.(type) {
	case *Ping:
		if want = TPing; t == want {
			m.Nonce = d.U64()
		}
	case *Pong:
		if want = TPong; t == want {
			m.Nonce = d.U64()
		}
	case *Alive:
		if want = TAlive; t == want {
			d.StringInto(&m.ID)
		}
	case *AliveAck:
		if want = TAliveAck; t == want {
			m.Known = d.Bool()
		}
	case *FetchPeers:
		want = TFetchPeers
	case *ShardRedirect:
		if want = TShardRedirect; t == want {
			m.Shard = d.Int()
			d.StringInto(&m.Addr)
		}
	case *ReserveOK:
		if want = TReserveOK; t == want {
			d.StringInto(&m.Key)
			m.P = d.Int()
		}
	case *ReserveNOK:
		if want = TReserveNOK; t == want {
			d.StringInto(&m.Key)
			d.StringInto(&m.Reason)
		}
	case *Cancel:
		if want = TCancel; t == want {
			d.StringInto(&m.Key)
		}
	case *CancelAck:
		if want = TCancelAck; t == want {
			d.StringInto(&m.Key)
		}
	case *Ready:
		if want = TReady; t == want {
			d.StringInto(&m.Key)
			m.OK = d.Bool()
			d.StringInto(&m.Reason)
		}
	case *Start:
		if want = TStart; t == want {
			d.StringInto(&m.Key)
		}
	case *StartAck:
		if want = TStartAck; t == want {
			d.StringInto(&m.Key)
		}
	case *JobPing:
		if want = TJobPing; t == want {
			m.Nonce = d.U64()
			d.StringInto(&m.JobID)
		}
	case *JobPong:
		if want = TJobPong; t == want {
			m.Nonce = d.U64()
			m.Known = d.Bool()
		}
	case *KillJob:
		if want = TKillJob; t == want {
			d.StringInto(&m.Key)
		}
	case *KillAck:
		if want = TKillAck; t == want {
			d.StringInto(&m.Key)
		}
	default:
		return fmt.Errorf("proto: DecodeInto does not support %T", msg)
	}
	if t != want {
		return fmt.Errorf("proto: frame is %v, not the expected type for %T", t, msg)
	}
	return d.Finish()
}
