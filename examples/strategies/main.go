// Strategies: deploy the modelled Grid'5000 testbed and compare where
// the spread, concentrate and mixed strategies place a 250-process job —
// the co-allocation experiment of the paper's §5.1 at one x-value.
//
//	go run ./examples/strategies
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"p2pmpi"
	"p2pmpi/internal/grid"
)

func main() {
	fmt.Println("strategies: booting the simulated Grid'5000 (350 peers, 6 sites)...")
	w := p2pmpi.NewSimulatedGrid(p2pmpi.DefaultWorldOptions(7))
	defer w.Close()
	if err := w.Boot(); err != nil {
		log.Fatalf("boot: %v", err)
	}

	const n = 250
	for _, strategy := range []p2pmpi.Strategy{p2pmpi.Concentrate, p2pmpi.Spread, p2pmpi.Mixed} {
		res, err := w.Submit(p2pmpi.JobSpec{
			Program:  "hostname",
			N:        n,
			R:        1,
			Strategy: strategy,
			Timeout:  5 * time.Minute,
		})
		if err != nil {
			log.Fatalf("%v: %v", strategy, err)
		}
		fmt.Printf("\n%-12s n=%d -> %d hosts used\n", strategy, n, res.Assignment.UsedHosts())
		hosts := res.Assignment.HostsBySite()
		procs := res.Assignment.ProcsBySite()
		for _, site := range grid.Sites {
			if hosts[site] == 0 {
				continue
			}
			fmt.Printf("  %-10s %3d hosts, %3d processes\n", site, hosts[site], procs[site])
		}
		// Show a few of the echoed host names.
		var names []string
		for _, r := range res.Results[:5] {
			names = append(names, string(r.Output))
		}
		sort.Strings(names)
		fmt.Printf("  first ranks ran on: %v ...\n", names)
	}
}
