// Strategies: deploy the modelled Grid'5000 testbed and compare where
// the spread, concentrate and mixed strategies place a 250-process job —
// the co-allocation experiment of the paper's §5.1 at one x-value —
// then boot a synthetic 200-host grid and show a registry extension
// (comm-aware placement) at work beyond the paper's testbed.
//
//	go run ./examples/strategies
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"p2pmpi"
)

func main() {
	fmt.Println("strategies: booting the simulated Grid'5000 (350 peers, 6 sites)...")
	w := p2pmpi.NewSimulatedGrid(p2pmpi.DefaultWorldOptions(7))
	if err := w.Boot(); err != nil {
		log.Fatalf("boot: %v", err)
	}
	for _, strategy := range []p2pmpi.Strategy{p2pmpi.Concentrate, p2pmpi.Spread, p2pmpi.Mixed} {
		report(w, strategy, 250)
	}
	w.Close()

	// Beyond the paper: the placement registry is open and the testbed
	// is not pinned to Table 1. Boot a synthetic grid (8 sites x 25
	// hosts, seeded RTT draws) and compare a latency-greedy paper
	// strategy with the comm-aware extension, which grows a cluster of
	// hosts with minimal estimated pairwise RTT.
	spec, err := p2pmpi.ParseTopologySpec("synth:S=8,H=25,C=2,seed=3")
	if err != nil {
		log.Fatal(err)
	}
	opts := p2pmpi.DefaultWorldOptions(7)
	opts.Topology = spec
	fmt.Printf("\nstrategies: booting a synthetic grid (%d peers, 8 sites)...\n", spec.TotalHosts())
	fmt.Printf("registered strategies: %v\n", p2pmpi.PlacementNames())
	sw := p2pmpi.NewSimulatedGrid(opts)
	defer sw.Close()
	if err := sw.Boot(); err != nil {
		log.Fatalf("boot synthetic: %v", err)
	}
	for _, strategy := range []p2pmpi.Strategy{p2pmpi.Spread, p2pmpi.CommAware, p2pmpi.MinSites} {
		report(sw, strategy, 64)
	}
}

// report submits one n-process hostname job and prints the footprint.
func report(w *p2pmpi.World, strategy p2pmpi.Strategy, n int) {
	res, err := w.Submit(p2pmpi.JobSpec{
		Program:  "hostname",
		N:        n,
		R:        1,
		Strategy: strategy,
		Timeout:  5 * time.Minute,
	})
	if err != nil {
		log.Fatalf("%v: %v", strategy, err)
	}
	fmt.Printf("\n%-12s n=%d -> %d hosts used across %d site(s)\n",
		strategy, n, res.Assignment.UsedHosts(), len(res.Assignment.HostsBySite()))
	hosts := res.Assignment.HostsBySite()
	procs := res.Assignment.ProcsBySite()
	for _, site := range w.Grid.SiteNames() {
		if hosts[site] == 0 {
			continue
		}
		fmt.Printf("  %-10s %3d hosts, %3d processes\n", site, hosts[site], procs[site])
	}
	// Show a few of the echoed host names.
	var names []string
	for _, r := range res.Results[:min(5, len(res.Results))] {
		names = append(names, string(r.Output))
	}
	sort.Strings(names)
	fmt.Printf("  first ranks ran on: %v ...\n", names)
}
