// Nasgrid: run the real NAS kernels (not the virtual-time models) over
// the MPI library — EP class W verified against the official NPB
// reference sums, and IS class S with full sortedness verification,
// each on 8 in-process ranks.
//
//	go run ./examples/nasgrid
package main

import (
	"fmt"
	"log"
	"time"

	"p2pmpi"
	"p2pmpi/internal/mpi"
	"p2pmpi/internal/nas"
)

func main() {
	const n = 8

	fmt.Printf("NAS EP class %s on %d ranks (2^%d Gaussian pairs)\n",
		nas.EPClassW.Name, n, nas.EPClassW.M)
	start := time.Now()
	errs := p2pmpi.RunLocal(p2pmpi.RealRuntime(), p2pmpi.TCPNetwork(),
		"127.0.0.1", 45200, n, p2pmpi.Algorithms{},
		func(c *mpi.Comm) error {
			lo := int64(c.Rank()) * (1 << nas.EPClassW.M) / int64(c.Size())
			hi := int64(c.Rank()+1) * (1 << nas.EPClassW.M) / int64(c.Size())
			r := nas.EPChunk(lo, hi)
			sums, err := c.AllreduceF64([]float64{r.Sx, r.Sy}, mpi.OpSum)
			if err != nil {
				return err
			}
			global := nas.EPResult{Sx: sums[0], Sy: sums[1]}
			if err := nas.EPVerify(nas.EPClassW, global); err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("  sx=%.10e sy=%.10e — matches the NPB reference\n", sums[0], sums[1])
			}
			return nil
		})
	check(errs)
	fmt.Printf("  EP done in %.2fs\n\n", time.Since(start).Seconds())

	fmt.Printf("NAS IS class %s on %d ranks (2^%d keys, %d iterations)\n",
		nas.ISClassS.Name, n, nas.ISClassS.TotalKeysLog2, nas.ISClassS.Iterations)
	start = time.Now()
	errs = p2pmpi.RunLocal(p2pmpi.RealRuntime(), p2pmpi.TCPNetwork(),
		"127.0.0.1", 45300, n, p2pmpi.Algorithms{},
		func(c *mpi.Comm) error {
			res, err := nas.RunIS(nas.ISClassS, c)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("  rank 0: %d of %d keys landed here, global offset %d — fully verified\n",
					res.ReceivedKeys, res.TotalKeys, res.GlobalStart)
			}
			return nil
		})
	check(errs)
	fmt.Printf("  IS done in %.2fs\n", time.Since(start).Seconds())
}

func check(errs []error) {
	for rank, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", rank, err)
		}
	}
}
