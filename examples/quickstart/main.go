// Quickstart: run an MPI program with the p2pmpi library — no daemons,
// no simulation, just four in-process ranks talking over real TCP on
// localhost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"p2pmpi"
)

func main() {
	const n = 4
	fmt.Printf("quickstart: %d ranks over local TCP\n", n)

	errs := p2pmpi.RunLocal(p2pmpi.RealRuntime(), p2pmpi.TCPNetwork(),
		"127.0.0.1", 45100, n, p2pmpi.Algorithms{},
		func(c *p2pmpi.Comm) error {
			// Each rank contributes rank+1; everyone learns the total.
			sum, err := c.AllreduceF64([]float64{float64(c.Rank() + 1)}, p2pmpi.OpSum)
			if err != nil {
				return err
			}
			// Rank 0 gathers a short greeting from every rank.
			msg := p2pmpi.Data{Bytes: []byte(fmt.Sprintf("hello from rank %d", c.Rank()))}
			all, err := c.Gather(0, msg)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("allreduce(1..%d) = %v\n", n, sum[0])
				for rank, d := range all {
					fmt.Printf("  gathered[%d] = %s\n", rank, d.Bytes)
				}
			}
			return nil
		})

	for rank, err := range errs {
		if err != nil {
			log.Fatalf("rank %d failed: %v", rank, err)
		}
	}
	fmt.Println("quickstart: all ranks finished")
}
