// Faulttolerance: the paper's replication mechanism in action (§3.2).
// A 3-process job runs with replication degree r=2 on a small simulated
// grid; one hosting machine is killed mid-run, and the job still
// completes because every rank has a live replica on a distinct host —
// the guarantee enforced by the rank-assignment rule.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"p2pmpi"
	"p2pmpi/internal/simnet"
)

func main() {
	s := p2pmpi.NewScheduler()
	defer s.Shutdown()

	// Six hosts across two sites.
	hostSite := map[string]string{"frontal": "east"}
	var names []string
	for i := 0; i < 6; i++ {
		h := fmt.Sprintf("h%d", i)
		names = append(names, h)
		site := "east"
		if i >= 3 {
			site = "west"
		}
		hostSite[h] = site
	}
	net := simnet.New(s, &simnet.StaticTopology{HostSite: hostSite, DefLat: 2 * time.Millisecond},
		simnet.DefaultConfig(11))

	// A program that works for a while, so the failure hits mid-run.
	programs := map[string]p2pmpi.Program{
		"slowhost": func(env *p2pmpi.Env) error {
			env.RT.Sleep(10 * time.Second)
			fmt.Fprintf(&env.Out, "%s survived", env.HostID)
			return nil
		},
	}

	sn := p2pmpi.NewSupernode(s, net.Node("frontal"), p2pmpi.SupernodeConfig{Addr: "frontal:8800"})
	mk := func(id string, p int) *p2pmpi.MPD {
		return p2pmpi.NewMPD(s, net.Node(id), p2pmpi.MPDConfig{
			Self: p2pmpi.PeerInfo{ID: id, Site: hostSite[id], MPDAddr: id + ":9000", RSAddr: id + ":9001"},
			P:    p,
			Seed: int64(p + len(id)),
			Shared: &p2pmpi.MPDShared{
				SupernodeAddr: "frontal:8800",
				Programs:      programs,
				PingInterval:  5 * time.Second,
			},
		})
	}
	front := mk("frontal", 0)
	var peers []*p2pmpi.MPD
	for _, h := range names {
		peers = append(peers, mk(h, 1))
	}

	var res *p2pmpi.JobResult
	var err error
	s.Go("main", func() {
		if e := sn.Start(); e != nil {
			err = e
			return
		}
		if e := front.Start(); e != nil {
			err = e
			return
		}
		for _, p := range peers {
			if e := p.Start(); e != nil {
				err = e
				return
			}
		}
		s.Sleep(15 * time.Second) // discovery + latency measurement

		fmt.Println("submitting: 3 ranks, replication degree 2 (6 processes)")
		s.Go("killer", func() {
			s.Sleep(5 * time.Second) // mid-run: the processes sleep for 10s
			fmt.Println("killing host h0 while the job runs...")
			net.FailHost("h0")
		})
		res, err = front.Submit(p2pmpi.JobSpec{
			Program:  "slowhost",
			N:        3,
			R:        2,
			Strategy: p2pmpi.Spread,
			Timeout:  3 * time.Minute,
		})
		// Stop every daemon so the virtual world can quiesce and Wait
		// below returns.
		sn.Close()
		front.Close()
		for _, p := range peers {
			p.Close()
		}
	})
	s.Wait()
	if err != nil {
		log.Fatalf("job failed entirely: %v", err)
	}

	fmt.Printf("\njob finished; per-replica outcomes:\n")
	survivors := map[int]int{}
	for _, r := range res.Results {
		status := "LOST (host killed)"
		if r.OK {
			status = string(r.Output)
			survivors[r.Rank]++
		}
		fmt.Printf("  rank %d replica %d: %s\n", r.Rank, r.Replica, status)
	}
	for rank := 0; rank < 3; rank++ {
		if survivors[rank] == 0 {
			log.Fatalf("rank %d lost all replicas — replication failed", rank)
		}
	}
	fmt.Println("\nevery rank kept at least one live replica: the application survives")
}
