package p2pmpi

// BenchmarkAblationReplication measures the runtime overhead of the
// fault-tolerance replication degree r ∈ {1,2,3} on an EP-like workload
// (compute + one small allreduce) over a 12-host virtual world. The
// reported metric is the job's virtual duration: the cost of running r
// copies of every rank with leader-transmit/backup-log coordination.

import (
	"fmt"
	"testing"
	"time"

	"p2pmpi/internal/simnet"
)

func BenchmarkAblationReplication(b *testing.B) {
	for _, r := range []int{1, 2, 3} {
		r := r
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				virtual += replicatedJobVirtualTime(b, r)
			}
			b.ReportMetric(virtual.Seconds()/float64(b.N), "virtual-sec/job")
		})
	}
}

func replicatedJobVirtualTime(b *testing.B, r int) time.Duration {
	b.Helper()
	s := NewScheduler()
	defer s.Shutdown()

	hostSite := map[string]string{"frontal": "east"}
	var names []string
	for i := 0; i < 12; i++ {
		h := fmt.Sprintf("h%02d", i)
		names = append(names, h)
		site := "east"
		if i >= 6 {
			site = "west"
		}
		hostSite[h] = site
	}
	net := simnet.New(s, &simnet.StaticTopology{HostSite: hostSite, DefLat: 2 * time.Millisecond},
		simnet.Config{Seed: int64(r), NICBps: 1e9})

	programs := map[string]Program{
		"eplike": func(env *Env) error {
			c, err := env.Comm()
			if err != nil {
				return err
			}
			env.Compute(2e9, 1e8) // ~1s of modelled computation
			_, err = c.AllreduceF64([]float64{float64(env.Rank)}, OpSum)
			return err
		},
	}
	sn := NewSupernode(s, net.Node("frontal"), SupernodeConfig{Addr: "frontal:8800"})
	mk := func(id string, p int) *MPD {
		return NewMPD(s, net.Node(id), MPDConfig{
			Self:    PeerInfo{ID: id, Site: hostSite[id], MPDAddr: id + ":9000", RSAddr: id + ":9001"},
			P:       p,
			Profile: HostProfile{Cores: 2, CoreGFLOPS: 2, MemBWGBs: 5},
			Seed:    int64(len(id) * r),
			Shared: &MPDShared{
				SupernodeAddr: "frontal:8800",
				Programs:      programs,
				PingInterval:  10 * time.Second,
			},
		})
	}
	front := mk("frontal", 0)
	var peers []*MPD
	for _, h := range names {
		peers = append(peers, mk(h, 2))
	}

	var dur time.Duration
	s.Go("bench", func() {
		defer func() {
			sn.Close()
			front.Close()
			for _, p := range peers {
				p.Close()
			}
		}()
		if err := sn.Start(); err != nil {
			b.Errorf("sn: %v", err)
			return
		}
		if err := front.Start(); err != nil {
			b.Errorf("front: %v", err)
			return
		}
		for _, p := range peers {
			if err := p.Start(); err != nil {
				b.Errorf("peer: %v", err)
				return
			}
		}
		s.Sleep(15 * time.Second) // discovery + latency round
		start := s.Now()
		res, err := front.Submit(JobSpec{
			Program: "eplike", N: 4, R: r, Strategy: Spread,
			Timeout: 5 * time.Minute,
		})
		if err != nil {
			b.Errorf("submit r=%d: %v", r, err)
			return
		}
		if res.Failures() != 0 {
			b.Errorf("r=%d: %d failures", r, res.Failures())
		}
		dur = s.Now().Sub(start)
	})
	s.Wait()
	return dur
}
