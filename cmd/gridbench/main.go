// Command gridbench regenerates every table and figure of the paper's
// evaluation on the modelled Grid'5000 testbed:
//
//	gridbench -exp table1            # Table 1, the resource inventory
//	gridbench -exp fig2              # Figure 2, concentrate allocation
//	gridbench -exp fig3              # Figure 3, spread allocation
//	gridbench -exp fig4ep            # Figure 4 left, NAS EP times
//	gridbench -exp fig4is            # Figure 4 right, NAS IS times
//	gridbench -exp all               # everything above
//	gridbench -exp conc              # beyond the paper: K concurrent jobs
//	gridbench -exp scale -grid synth:S=10,H=100   # beyond the paper: world-size sweep
//	gridbench -exp scale -grid synth:S=16,H=100 -hosts 5000,20000,50000 -sn 1,4,16
//	                                 # beyond the paper: federated membership tier at 50k hosts
//	gridbench -exp churn -grid synth:S=12,H=400 -mtbf 600,1800,3600 -R 1,2,3
//	                                 # beyond the paper: survivability under host churn
//	gridbench -exp open -grid synth:S=3,H=8 -arrival poisson:rate=0.02 -duration 2h
//	gridbench -exp open -arrival diurnal:peak=0.05,trough=0.005,period=1h -tenants 4 -duration 3h
//	                                 # beyond the paper: open-system steady state
//	gridbench -exp nemesis -grid synth:S=3,H=8 -loss 0,0.1,0.3 -partdur 0,60 -sn 4
//	gridbench -exp nemesis -faults "gray:frac=0.2,mtbf=2m;dup:p=0.01" -loss 0.1 -partdur 30
//	                                 # beyond the paper: partition & gray-failure tolerance
//	gridbench -exp estimators        # beyond the paper: latency-estimator ablation
//
// The conc experiment family submits K identical jobs simultaneously
// through the multi-job scheduler and reports, per strategy, the mean
// allocation footprint (sites/hosts used), completion time and the
// reservation-conflict rate — contention the paper's one-job-at-a-time
// harness never exercises. Tune it with -jobs (K axis), -n, -r.
//
// The churn experiment family injects seeded host failures (exponential
// or Weibull MTBF/MTTR per host via -mtbf/-mttr/-dist, optionally
// correlated whole-site outages via -sitemtbf) while a batch of
// fixed-duration jobs (-cjobs, -dur) runs with the mid-run failure
// detector armed, and reports per (strategy, MTBF, replication degree)
// point the job success rate, completion-time inflation, replica
// failovers, re-booked attempts and wasted slot-hours. -R sets the
// replication axis. Identical seeds replay identical failures, whatever
// -workers is.
//
// The open experiment family replaces the closed batches with an open
// arrival process (-arrival "poisson:rate=0.5" or
// "diurnal:peak=2,trough=0.2,period=24h,maintevery=6h,maintdur=30m")
// over -tenants users with Zipf rate skew (-skew) and stratified
// admission priorities (-prilevels), replayed for -duration of virtual
// time with the leading -warmup truncated. Job widths and service
// durations are bounded-Pareto draws. Per strategy it reports
// steady-state utilization, queue-wait P50/P90/P99 and bounded-slowdown
// percentiles from streaming t-digests (O(1) memory per metric,
// whatever the submission count), and Jain fairness across tenants.
// A single -mtbf value composes host churn with the open workload.
//
// The nemesis experiment family injects seeded network misbehaviour —
// site-pair partitions including federation-splitting bisections,
// uniform cross-site frame loss, latency inflation, gray hosts that
// stay up but drop or slow traffic, and bounded frame duplication —
// while a batch of jobs runs with the RPC robustness layer (deadlines,
// seeded exponential-backoff retries, receiver-side idempotency,
// per-supernode circuit breakers) armed. -loss and -partdur are the
// swept axes; -faults supplies the remaining fault-model knobs in the
// faults.ParseFaultSpec syntax; -rpcretries sets the retry budget (-1
// disables the layer, the no-robustness baseline); a single -mtbf
// composes host churn on top. Per (loss, partition duration) point it
// reports success rate, completion-time inflation, retry volume and —
// on federated worlds (-sn K>1) — the split-brain window and the
// anti-entropy healing latency after each partition lifts.
//
// The scale experiment family frees the evaluation from Table 1: it
// boots synthetic worlds described by -grid (site count, hosts per
// site, seeded inter-site RTT distribution; see grid.ParseTopologySpec)
// and measures every registered placement strategy at every -hosts world
// size, reporting completion time, allocation footprint and
// reservation-conflict rate per (strategy, size) point as CSV with
// -format csv. -a selects a strategy subset ("all" by default; any
// comma-separated registered names, e.g. -a comm-aware,minsites). -sn
// adds the membership-tier axis: each K boots a federation of K
// gossiping supernode shards (registration latency, gossip staleness
// and membership bytes join the CSV columns), which is what pushes the
// sweeps into the 50k-host regime — a single supernode's O(world)
// replies saturate long before the simulation core does.
//
// Experiments built from independent worlds (fig4's two strategy
// worlds, every conc sweep point) run across a -workers wide pool;
// outputs are byte-identical whatever the worker count. fig2 and fig3
// are inherently sequential — their points share one world.
//
// The -seed flag changes the stochastic elements (latency jitter, key
// generation); the published numbers in EXPERIMENTS.md use seed 42.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"p2pmpi/internal/churn"
	"p2pmpi/internal/core"
	"p2pmpi/internal/exp"
	"p2pmpi/internal/faults"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/workload"
)

func main() {
	which := flag.String("exp", "all", "experiment: table1|fig2|fig3|fig4ep|fig4is|all|conc|scale|churn|open|nemesis|estimators")
	seed := flag.Int64("seed", 42, "simulation seed")
	format := flag.String("format", "table", "output format: table|csv")
	jobs := flag.String("jobs", "1,2,4,8,16", "conc: comma-separated K values (concurrent jobs per point)")
	n := flag.Int("n", 32, "conc/scale/churn: processes per job")
	r := flag.Int("r", 1, "conc/scale: replication degree per job")
	gridSpec := flag.String("grid", "grid5000", "topology: grid5000 or synth:S=12,H=400,C=2,seed=7,rttmin=5ms,rttmax=25ms")
	alloc := flag.String("a", "all", "conc/scale/churn: strategies, \"all\" or comma-separated names from: "+strings.Join(core.Names(), "|"))
	hosts := flag.String("hosts", "", "scale: comma-separated world sizes (hosts); default: the -grid spec's own size")
	sn := flag.String("sn", "", "supernode-federation width K; scale takes a comma-separated axis (e.g. 1,4,16), conc/churn a single value; default: the -grid spec's sn value (1)")
	workers := flag.Int("workers", exp.DefaultWorkers(), "pool width for fig4, conc, scale and churn sweeps (independent worlds)")
	shards := flag.Int("shards", 1, "conservative-parallel shard count per world: partition sites onto N event loops synchronized by lookahead barriers (1 = sequential; output is byte-identical for any value)")
	// The churn duration flags all accept bare seconds ("600") or Go
	// durations ("10m"), matching the -mtbf axis syntax.
	mtbf := flag.String("mtbf", "", "churn: comma-separated per-host MTBF axis (seconds or Go durations, e.g. 600,1800 or 10m,30m)")
	mttr := flag.String("mttr", "60", "churn: mean per-host repair time (seconds or Go duration)")
	rAxis := flag.String("R", "1,2", "churn: comma-separated replication-degree axis")
	cjobs := flag.Int("cjobs", 8, "churn: jobs per sweep point")
	dur := flag.Float64("dur", 120, "churn: per-job spin duration (virtual seconds, the failure-free baseline)")
	detect := flag.String("detect", "10", "churn: failure-detector probe period (seconds or Go duration)")
	dist := flag.String("dist", "exp", "churn: lifetime distribution, exp|weibull")
	shape := flag.Float64("shape", 0.7, "churn: Weibull shape (with -dist weibull)")
	siteMTBF := flag.String("sitemtbf", "0", "churn: mean time between correlated whole-site outages (seconds or Go duration; 0 disables)")
	siteMTTR := flag.String("sitemttr", "0", "churn: mean whole-site outage duration (seconds or Go duration; default sitemtbf/20)")
	arrival := flag.String("arrival", "poisson:rate=0.01", "open: arrival process, poisson:rate=R or diurnal:peak=P,trough=T[,period=D,maintevery=D,maintdur=D]")
	tenants := flag.Int("tenants", 1, "open: submitting tenants")
	skew := flag.Float64("skew", 0, "open: Zipf skew of the tenants' rate shares (0 = equal)")
	priLevels := flag.Int("prilevels", 1, "open: admission priority levels stratified over the tenants")
	duration := flag.String("duration", "", "open: arrival horizon (seconds or Go duration, required)")
	warmup := flag.String("warmup", "auto", "open: leading transient excluded from statistics (auto = duration/10, 0 = none)")
	maxSubs := flag.Int("maxsubs", 0, "open: cap the submission trace per point (0 = uncapped)")
	nMin := flag.Int("nmin", 0, "open: minimum processes per submission (0 = workload default)")
	nMax := flag.Int("nmax", 0, "open: maximum processes per submission (0 = workload default)")
	durMin := flag.Float64("durmin", 0, "open: minimum job service time (virtual seconds; 0 = workload default)")
	durMax := flag.Float64("durmax", 0, "open: maximum job service time (virtual seconds; 0 = workload default)")
	quota := flag.Float64("quota", 0, "open: per-tenant quota accrual rate (slot-seconds per virtual second; 0 disables quotas)")
	quotaBurst := flag.Float64("quotaburst", 0, "open: quota bucket cap (slot-seconds; 0 = one hour at -quota)")
	preempt := flag.Bool("preempt", false, "open: let starved in-budget higher-priority jobs evict over-budget lower-priority running jobs")
	inflight := flag.Int("inflight", 0, "open: scheduler worker pool — max concurrent in-flight jobs per point (0 = default 8; size to arrival-rate × service time or the backlog grows)")
	deadline := flag.String("deadline", "", "open: comma-separated per-priority-class deadline factors, highest class first (deadline = arrival + factor×service; last entry reused; empty disables SLO tracking)")
	faultsSpec := flag.String("faults", "", "nemesis: fault-model spec (part:mtbf=10m,split=1;link:loss=0.1,mult=2;gray:frac=0.1,mtbf=5m;dup:p=0.01); -loss/-partdur override its link-loss and partition-duration values as swept axes")
	lossAxis := flag.String("loss", "", "nemesis: comma-separated cross-site drop-probability axis (e.g. 0,0.1,0.3)")
	partDur := flag.String("partdur", "", "nemesis: comma-separated mean partition duration axis (seconds or Go durations; 0 = no partitions at that point)")
	rpcRetries := flag.Int("rpcretries", 2, "nemesis: RPC robustness-layer retry budget per exchange (-1 disables the layer)")
	breaker := flag.Int("breaker", 0, "nemesis: per-supernode circuit-breaker threshold (consecutive failures; 0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit (pprof format)")
	flag.Parse()
	csv := *format == "csv"

	// Profiling hooks: hot-path hunts run the very binary that produces
	// the figures instead of an ad-hoc test rig, so the profile covers
	// world boot, the sweep pool and rendering exactly as shipped.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	topo, err := grid.ParseTopologySpec(*gridSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench: -grid: %v\n", err)
		os.Exit(2)
	}
	strategies, err := parseStrategies(*alloc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench: -a: %v\n", err)
		os.Exit(2)
	}
	if topo.IsSynthetic() && *which != "scale" && *which != "conc" && *which != "churn" && *which != "open" && *which != "nemesis" {
		fmt.Fprintf(os.Stderr, "gridbench: -grid %s only applies to -exp scale, conc, churn, open and nemesis; the paper figures are pinned to grid5000\n", topo)
		os.Exit(2)
	}

	var snAxis []int
	if *sn != "" {
		var err error
		if snAxis, err = parseKs(*sn); err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: -sn: %v\n", err)
			os.Exit(2)
		}
		if *which != "scale" && *which != "conc" && *which != "churn" && *which != "open" && *which != "nemesis" {
			fmt.Fprintf(os.Stderr, "gridbench: -sn only applies to -exp scale, conc, churn, open and nemesis; the paper figures are pinned to the single supernode\n")
			os.Exit(2)
		}
		if *which != "scale" && len(snAxis) != 1 {
			fmt.Fprintf(os.Stderr, "gridbench: -sn: %s takes a single federation width\n", *which)
			os.Exit(2)
		}
	}

	// The paper's figures stay pinned to the Grid5000 inventory; -grid
	// steers the beyond-the-paper families (conc, scale).
	opts := exp.DefaultOptions(*seed)
	opts.Shards = *shards
	topoOpts := opts
	topoOpts.Topology = topo
	if len(snAxis) == 1 {
		topoOpts.Supernodes = snAxis[0]
	}
	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs wall]\n\n", name, time.Since(start).Seconds())
	}

	all := *which == "all"
	if all || *which == "table1" {
		run("table1", func() error {
			if csv {
				fmt.Print(exp.Table1CSV())
			} else {
				fmt.Print(exp.RenderTable1())
			}
			return nil
		})
	}
	if all || *which == "fig2" {
		run("fig2", func() error {
			pts, err := exp.Fig2(opts, nil)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.SitePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderSitePoints("Figure 2: concentrate — allocated hosts/cores per site", pts))
			}
			return nil
		})
	}
	if all || *which == "fig3" {
		run("fig3", func() error {
			pts, err := exp.Fig3(opts, nil)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.SitePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderSitePoints("Figure 3: spread — allocated hosts/cores per site", pts))
			}
			return nil
		})
	}
	if all || *which == "fig4ep" {
		run("fig4ep", func() error {
			pts, err := exp.Fig4EP(opts, nil, *workers)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.TimePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderTimePoints("Figure 4 (left): EP CLASS B total time", pts))
			}
			return nil
		})
	}
	if all || *which == "fig4is" {
		run("fig4is", func() error {
			pts, err := exp.Fig4IS(opts, nil, *workers)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.TimePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderTimePoints("Figure 4 (right): IS CLASS B total time", pts))
			}
			return nil
		})
	}
	if *which == "conc" {
		ks, err := parseKs(*jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: -jobs: %v\n", err)
			os.Exit(2)
		}
		cfg := exp.ConcurrentConfig{N: *n, R: *r}
		for _, strategy := range strategies {
			strategy := strategy
			run("conc/"+strategy.String(), func() error {
				pts, err := exp.ConcurrentSweep(topoOpts, strategy, ks, cfg, *workers)
				if err != nil {
					return err
				}
				if csv {
					fmt.Print(exp.ConcurrentPointsCSV(pts))
				} else {
					fmt.Print(exp.RenderConcurrentPoints(
						fmt.Sprintf("Concurrent jobs — %s, n=%d r=%d", strategy, *n, *r), pts))
				}
				return nil
			})
		}
		return
	}
	if *which == "scale" {
		var hostCounts []int
		if *hosts != "" {
			var err error
			if hostCounts, err = parseKs(*hosts); err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -hosts: %v\n", err)
				os.Exit(2)
			}
		}
		run("scale", func() error {
			pts, err := exp.ScaleSweep(opts, exp.ScaleConfig{
				Base:       topo,
				Strategies: strategies,
				HostCounts: hostCounts,
				Supernodes: snAxis,
				N:          *n,
				R:          *r,
			}, *workers)
			if err != nil {
				return err
			}
			federated := false
			for _, p := range pts {
				if p.SN > 1 {
					federated = true
				}
			}
			switch {
			case csv && (federated || len(snAxis) > 1):
				fmt.Print(exp.FederationPointsCSV(pts))
			case csv:
				fmt.Print(exp.ScalePointsCSV(pts))
			default:
				fmt.Print(exp.RenderScalePoints(
					fmt.Sprintf("Scale sweep — %s, n=%d r=%d", topo, *n, *r), pts))
			}
			return nil
		})
		return
	}
	if *which == "churn" {
		mtbfs, err := parseDurations(*mtbf)
		if err != nil || len(mtbfs) == 0 {
			fmt.Fprintf(os.Stderr, "gridbench: -mtbf: need a comma-separated axis like 600,1800,3600 (%v)\n", err)
			os.Exit(2)
		}
		rs, err := parseKs(*rAxis)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: -R: %v\n", err)
			os.Exit(2)
		}
		distKind, err := churn.ParseDistKind(*dist)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: -dist: %v\n", err)
			os.Exit(2)
		}
		durFlag := func(name, v string) time.Duration {
			d, err := parseDuration1(v)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -%s: %v\n", name, err)
				os.Exit(2)
			}
			return d
		}
		mttrD := durFlag("mttr", *mttr)
		detectD := durFlag("detect", *detect)
		siteMTBFD := durFlag("sitemtbf", *siteMTBF)
		siteMTTRD := durFlag("sitemttr", *siteMTTR)
		run("churn", func() error {
			pts, err := exp.ChurnSweep(topoOpts, exp.ChurnConfig{
				Base:         topo,
				Strategies:   strategies,
				MTBFs:        mtbfs,
				Rs:           rs,
				N:            *n,
				Jobs:         *cjobs,
				JobSeconds:   *dur,
				MTTR:         mttrD,
				Dist:         distKind,
				WeibullShape: *shape,
				SiteMTBF:     siteMTBFD,
				SiteMTTR:     siteMTTRD,
				Detect:       detectD,
			}, *workers)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.ChurnPointsCSV(pts))
			} else {
				fmt.Print(exp.RenderChurnPoints(
					fmt.Sprintf("Churn sweep — %s, n=%d, %d jobs/point, %gs jobs, mttr=%s",
						topo, *n, *cjobs, *dur, mttrD), pts))
			}
			return nil
		})
		return
	}
	if *which == "open" {
		spec, err := workload.ParseArrivalSpec(*arrival)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: -arrival: %v\n", err)
			os.Exit(2)
		}
		if *duration == "" {
			fmt.Fprintf(os.Stderr, "gridbench: -exp open needs -duration (e.g. -duration 2h)\n")
			os.Exit(2)
		}
		durFlag := func(name, v string) time.Duration {
			d, err := parseDuration1(v)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -%s: %v\n", name, err)
				os.Exit(2)
			}
			return d
		}
		durationD := durFlag("duration", *duration)
		// "auto" keeps the duration/10 transient cut; an explicit value —
		// including 0 — means exactly that value.
		warmupD := exp.WarmupAuto
		if *warmup != "auto" {
			warmupD = durFlag("warmup", *warmup)
		}
		var deadlines []float64
		if *deadline != "" {
			if deadlines, err = parseFloats(*deadline); err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -deadline: %v\n", err)
				os.Exit(2)
			}
		}
		cfg := exp.OpenConfig{
			Base:            topo,
			Strategies:      strategies,
			Arrival:         spec,
			Tenants:         *tenants,
			TenantSkew:      *skew,
			PriorityLevels:  *priLevels,
			Duration:        durationD,
			Warmup:          warmupD,
			R:               *r,
			MaxSubmissions:  *maxSubs,
			Workers:         *inflight,
			NMin:            *nMin,
			NMax:            *nMax,
			DurMin:          *durMin,
			DurMax:          *durMax,
			QuotaRate:       *quota,
			QuotaBurst:      *quotaBurst,
			Preempt:         *preempt,
			DeadlineFactors: deadlines,
		}
		// A single -mtbf value composes host churn with the open workload.
		if *mtbf != "" {
			mtbfD := durFlag("mtbf", *mtbf)
			distKind, err := churn.ParseDistKind(*dist)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -dist: %v\n", err)
				os.Exit(2)
			}
			cfg.MTBF = mtbfD
			cfg.MTTR = durFlag("mttr", *mttr)
			cfg.Dist = distKind
			cfg.WeibullShape = *shape
			cfg.SiteMTBF = durFlag("sitemtbf", *siteMTBF)
			cfg.SiteMTTR = durFlag("sitemttr", *siteMTTR)
			cfg.Detect = durFlag("detect", *detect)
		}
		run("open", func() error {
			pts, err := exp.OpenSweep(topoOpts, cfg, *workers)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.OpenPointsCSV(pts))
			} else {
				fmt.Print(exp.RenderOpenPoints(
					fmt.Sprintf("Open-system steady state — %s, %s, %d tenants, %v horizon",
						topo, spec, *tenants, durationD), pts))
			}
			return nil
		})
		return
	}
	if *which == "nemesis" {
		fc, err := faults.ParseFaultSpec(*faultsSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: -faults: %v\n", err)
			os.Exit(2)
		}
		var losses []float64
		if *lossAxis != "" {
			if losses, err = parseFloats(*lossAxis); err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -loss: %v\n", err)
				os.Exit(2)
			}
		} else if fc.Loss > 0 {
			losses = []float64{fc.Loss}
		}
		var partDurs []time.Duration
		if *partDur != "" {
			if partDurs, err = parseDurations(*partDur); err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -partdur: %v\n", err)
				os.Exit(2)
			}
		} else if fc.PartMTBF > 0 {
			partDurs = []time.Duration{fc.PartMTTR}
		}
		durFlag := func(name, v string) time.Duration {
			d, err := parseDuration1(v)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -%s: %v\n", name, err)
				os.Exit(2)
			}
			return d
		}
		cfg := exp.NemesisConfig{
			Base:             topo,
			Strategy:         strategies[0],
			Losses:           losses,
			PartDurs:         partDurs,
			LatMult:          fc.LatMult,
			Dup:              fc.DupProb,
			DupDelay:         fc.DupDelay,
			GrayFrac:         fc.GrayFrac,
			GrayMTBF:         fc.GrayMTBF,
			GrayMTTR:         fc.GrayMTTR,
			GrayDrop:         fc.GrayDrop,
			GraySlow:         fc.GraySlow,
			N:                *n,
			R:                *r,
			Jobs:             *cjobs,
			JobSeconds:       *dur,
			Detect:           durFlag("detect", *detect),
			RPCRetries:       *rpcRetries,
			BreakerThreshold: *breaker,
		}
		if fc.PartMTBF > 0 {
			cfg.PartMTBF = fc.PartMTBF
			cfg.NoSplit = !fc.Split
		}
		// A single -mtbf value composes host churn, as in -exp open.
		if *mtbf != "" {
			cfg.MTBF = durFlag("mtbf", *mtbf)
			cfg.MTTR = durFlag("mttr", *mttr)
		}
		run("nemesis", func() error {
			pts, err := exp.NemesisSweep(topoOpts, cfg, *workers)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.NemesisPointsCSV(pts))
				if len(pts) > 0 && pts[0].SN > 1 {
					fmt.Println()
					fmt.Print(exp.NemesisFederationCSV(pts))
				}
			} else {
				fmt.Print(exp.RenderNemesisPoints(
					fmt.Sprintf("Network nemesis — %s, n=%d r=%d, %d jobs/point, %gs jobs",
						topo, *n, *r, *cjobs, *dur), pts))
			}
			return nil
		})
		return
	}
	if *which == "estimators" {
		run("estimators", func() error {
			pts, err := exp.EstimatorStudy(opts, nil, 4)
			if err != nil {
				return err
			}
			fmt.Println("Estimator study: booking-order quality after 4 probe rounds")
			fmt.Printf("%-8s %12s\n", "kind", "kendall-tau")
			for _, p := range pts {
				fmt.Printf("%-8s %12.4f\n", p.Kind, p.Tau)
			}
			return nil
		})
		return
	}
	if !all && *which != "table1" && *which != "fig2" && *which != "fig3" &&
		*which != "fig4ep" && *which != "fig4is" {
		fmt.Fprintf(os.Stderr, "gridbench: unknown experiment %q (try also: conc, scale, churn, open, nemesis, estimators)\n", *which)
		os.Exit(2)
	}
}

// parseDuration1 parses one duration value; bare numbers are seconds
// ("600"), Go durations work too ("10m").
func parseDuration1(s string) (time.Duration, error) {
	out, err := parseDurations(s)
	if err != nil {
		return 0, err
	}
	if len(out) != 1 {
		return 0, fmt.Errorf("want one duration, got %q", s)
	}
	return out[0], nil
}

// parseDurations parses a comma-separated duration axis; bare numbers
// are seconds ("600,1800"), Go durations work too ("10m,30m").
func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if secs, err := strconv.ParseFloat(f, 64); err == nil {
			out = append(out, time.Duration(secs*float64(time.Second)))
			continue
		}
		d, err := time.ParseDuration(f)
		if err != nil {
			return nil, fmt.Errorf("bad duration %q", f)
		}
		out = append(out, d)
	}
	return out, nil
}

// parseStrategies resolves the -a flag: "all" (or empty) expands to
// every registered strategy; otherwise each comma-separated name must be
// registered.
func parseStrategies(s string) ([]core.Strategy, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return core.Strategies(), nil
	}
	var out []core.Strategy
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		st, err := core.ParseStrategy(f)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no strategies")
	}
	return out, nil
}

// parseFloats parses the -loss axis ("0,0.1,0.3").
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values")
	}
	return out, nil
}

// parseKs parses the -jobs axis ("1,2,4,8").
func parseKs(s string) ([]int, error) {
	var ks []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, err := strconv.Atoi(f)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad K value %q", f)
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("no K values")
	}
	return ks, nil
}
