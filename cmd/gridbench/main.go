// Command gridbench regenerates every table and figure of the paper's
// evaluation on the modelled Grid'5000 testbed:
//
//	gridbench -exp table1            # Table 1, the resource inventory
//	gridbench -exp fig2              # Figure 2, concentrate allocation
//	gridbench -exp fig3              # Figure 3, spread allocation
//	gridbench -exp fig4ep            # Figure 4 left, NAS EP times
//	gridbench -exp fig4is            # Figure 4 right, NAS IS times
//	gridbench -exp all               # everything above
//	gridbench -exp conc              # beyond the paper: K concurrent jobs
//	gridbench -exp scale -grid synth:S=10,H=100   # beyond the paper: world-size sweep
//
// The conc experiment family submits K identical jobs simultaneously
// through the multi-job scheduler and reports, per strategy, the mean
// allocation footprint (sites/hosts used), completion time and the
// reservation-conflict rate — contention the paper's one-job-at-a-time
// harness never exercises. Tune it with -jobs (K axis), -n, -r.
//
// The scale experiment family frees the evaluation from Table 1: it
// boots synthetic worlds described by -grid (site count, hosts per
// site, seeded inter-site RTT distribution; see grid.ParseTopologySpec)
// and measures every registered placement strategy at every -hosts world
// size, reporting completion time, allocation footprint and
// reservation-conflict rate per (strategy, size) point as CSV with
// -format csv. -a selects a strategy subset ("all" by default; any
// comma-separated registered names, e.g. -a comm-aware,minsites).
//
// Experiments built from independent worlds (fig4's two strategy
// worlds, every conc sweep point) run across a -workers wide pool;
// outputs are byte-identical whatever the worker count. fig2 and fig3
// are inherently sequential — their points share one world.
//
// The -seed flag changes the stochastic elements (latency jitter, key
// generation); the published numbers in EXPERIMENTS.md use seed 42.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/exp"
	"p2pmpi/internal/grid"
)

func main() {
	which := flag.String("exp", "all", "experiment: table1|fig2|fig3|fig4ep|fig4is|all|conc|scale|estimators")
	seed := flag.Int64("seed", 42, "simulation seed")
	format := flag.String("format", "table", "output format: table|csv")
	jobs := flag.String("jobs", "1,2,4,8,16", "conc: comma-separated K values (concurrent jobs per point)")
	n := flag.Int("n", 32, "conc/scale: processes per job")
	r := flag.Int("r", 1, "conc/scale: replication degree per job")
	gridSpec := flag.String("grid", "grid5000", "topology: grid5000 or synth:S=12,H=400,C=2,seed=7,rttmin=5ms,rttmax=25ms")
	alloc := flag.String("a", "all", "conc/scale: strategies, \"all\" or comma-separated names from: "+strings.Join(core.Names(), "|"))
	hosts := flag.String("hosts", "", "scale: comma-separated world sizes (hosts); default: the -grid spec's own size")
	workers := flag.Int("workers", exp.DefaultWorkers(), "pool width for fig4, conc and scale sweeps (independent worlds)")
	flag.Parse()
	csv := *format == "csv"

	topo, err := grid.ParseTopologySpec(*gridSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench: -grid: %v\n", err)
		os.Exit(2)
	}
	strategies, err := parseStrategies(*alloc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench: -a: %v\n", err)
		os.Exit(2)
	}
	if topo.IsSynthetic() && *which != "scale" && *which != "conc" {
		fmt.Fprintf(os.Stderr, "gridbench: -grid %s only applies to -exp scale and -exp conc; the paper figures are pinned to grid5000\n", topo)
		os.Exit(2)
	}

	// The paper's figures stay pinned to the Grid5000 inventory; -grid
	// steers the beyond-the-paper families (conc, scale).
	opts := exp.DefaultOptions(*seed)
	topoOpts := opts
	topoOpts.Topology = topo
	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs wall]\n\n", name, time.Since(start).Seconds())
	}

	all := *which == "all"
	if all || *which == "table1" {
		run("table1", func() error {
			if csv {
				fmt.Print(exp.Table1CSV())
			} else {
				fmt.Print(exp.RenderTable1())
			}
			return nil
		})
	}
	if all || *which == "fig2" {
		run("fig2", func() error {
			pts, err := exp.Fig2(opts, nil)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.SitePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderSitePoints("Figure 2: concentrate — allocated hosts/cores per site", pts))
			}
			return nil
		})
	}
	if all || *which == "fig3" {
		run("fig3", func() error {
			pts, err := exp.Fig3(opts, nil)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.SitePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderSitePoints("Figure 3: spread — allocated hosts/cores per site", pts))
			}
			return nil
		})
	}
	if all || *which == "fig4ep" {
		run("fig4ep", func() error {
			pts, err := exp.Fig4EP(opts, nil, *workers)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.TimePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderTimePoints("Figure 4 (left): EP CLASS B total time", pts))
			}
			return nil
		})
	}
	if all || *which == "fig4is" {
		run("fig4is", func() error {
			pts, err := exp.Fig4IS(opts, nil, *workers)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.TimePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderTimePoints("Figure 4 (right): IS CLASS B total time", pts))
			}
			return nil
		})
	}
	if *which == "conc" {
		ks, err := parseKs(*jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: -jobs: %v\n", err)
			os.Exit(2)
		}
		cfg := exp.ConcurrentConfig{N: *n, R: *r}
		for _, strategy := range strategies {
			strategy := strategy
			run("conc/"+strategy.String(), func() error {
				pts, err := exp.ConcurrentSweep(topoOpts, strategy, ks, cfg, *workers)
				if err != nil {
					return err
				}
				if csv {
					fmt.Print(exp.ConcurrentPointsCSV(pts))
				} else {
					fmt.Print(exp.RenderConcurrentPoints(
						fmt.Sprintf("Concurrent jobs — %s, n=%d r=%d", strategy, *n, *r), pts))
				}
				return nil
			})
		}
		return
	}
	if *which == "scale" {
		var hostCounts []int
		if *hosts != "" {
			var err error
			if hostCounts, err = parseKs(*hosts); err != nil {
				fmt.Fprintf(os.Stderr, "gridbench: -hosts: %v\n", err)
				os.Exit(2)
			}
		}
		run("scale", func() error {
			pts, err := exp.ScaleSweep(opts, exp.ScaleConfig{
				Base:       topo,
				Strategies: strategies,
				HostCounts: hostCounts,
				N:          *n,
				R:          *r,
			}, *workers)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.ScalePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderScalePoints(
					fmt.Sprintf("Scale sweep — %s, n=%d r=%d", topo, *n, *r), pts))
			}
			return nil
		})
		return
	}
	if *which == "estimators" {
		run("estimators", func() error {
			pts, err := exp.EstimatorStudy(opts, nil, 4)
			if err != nil {
				return err
			}
			fmt.Println("Estimator study: booking-order quality after 4 probe rounds")
			fmt.Printf("%-8s %12s\n", "kind", "kendall-tau")
			for _, p := range pts {
				fmt.Printf("%-8s %12.4f\n", p.Kind, p.Tau)
			}
			return nil
		})
		return
	}
	if !all && *which != "table1" && *which != "fig2" && *which != "fig3" &&
		*which != "fig4ep" && *which != "fig4is" {
		fmt.Fprintf(os.Stderr, "gridbench: unknown experiment %q (try also: conc, scale, estimators)\n", *which)
		os.Exit(2)
	}
}

// parseStrategies resolves the -a flag: "all" (or empty) expands to
// every registered strategy; otherwise each comma-separated name must be
// registered.
func parseStrategies(s string) ([]core.Strategy, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return core.Strategies(), nil
	}
	var out []core.Strategy
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		st, err := core.ParseStrategy(f)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no strategies")
	}
	return out, nil
}

// parseKs parses the -jobs axis ("1,2,4,8").
func parseKs(s string) ([]int, error) {
	var ks []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, err := strconv.Atoi(f)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad K value %q", f)
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("no K values")
	}
	return ks, nil
}
