// Command gridbench regenerates every table and figure of the paper's
// evaluation on the modelled Grid'5000 testbed:
//
//	gridbench -exp table1            # Table 1, the resource inventory
//	gridbench -exp fig2              # Figure 2, concentrate allocation
//	gridbench -exp fig3              # Figure 3, spread allocation
//	gridbench -exp fig4ep            # Figure 4 left, NAS EP times
//	gridbench -exp fig4is            # Figure 4 right, NAS IS times
//	gridbench -exp all               # everything
//
// The -seed flag changes the stochastic elements (latency jitter, key
// generation); the published numbers in EXPERIMENTS.md use seed 42.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p2pmpi/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment: table1|fig2|fig3|fig4ep|fig4is|all")
	seed := flag.Int64("seed", 42, "simulation seed")
	format := flag.String("format", "table", "output format: table|csv")
	flag.Parse()
	csv := *format == "csv"

	opts := exp.DefaultOptions(*seed)
	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs wall]\n\n", name, time.Since(start).Seconds())
	}

	all := *which == "all"
	if all || *which == "table1" {
		run("table1", func() error {
			if csv {
				fmt.Print(exp.Table1CSV())
			} else {
				fmt.Print(exp.RenderTable1())
			}
			return nil
		})
	}
	if all || *which == "fig2" {
		run("fig2", func() error {
			pts, err := exp.Fig2(opts, nil)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.SitePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderSitePoints("Figure 2: concentrate — allocated hosts/cores per site", pts))
			}
			return nil
		})
	}
	if all || *which == "fig3" {
		run("fig3", func() error {
			pts, err := exp.Fig3(opts, nil)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.SitePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderSitePoints("Figure 3: spread — allocated hosts/cores per site", pts))
			}
			return nil
		})
	}
	if all || *which == "fig4ep" {
		run("fig4ep", func() error {
			pts, err := exp.Fig4EP(opts, nil)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.TimePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderTimePoints("Figure 4 (left): EP CLASS B total time", pts))
			}
			return nil
		})
	}
	if all || *which == "fig4is" {
		run("fig4is", func() error {
			pts, err := exp.Fig4IS(opts, nil)
			if err != nil {
				return err
			}
			if csv {
				fmt.Print(exp.TimePointsCSV(pts))
			} else {
				fmt.Print(exp.RenderTimePoints("Figure 4 (right): IS CLASS B total time", pts))
			}
			return nil
		})
	}
	if *which == "estimators" {
		run("estimators", func() error {
			pts, err := exp.EstimatorStudy(opts, nil, 4)
			if err != nil {
				return err
			}
			fmt.Println("Estimator study: booking-order quality after 4 probe rounds")
			fmt.Printf("%-8s %12s\n", "kind", "kendall-tau")
			for _, p := range pts {
				fmt.Printf("%-8s %12.4f\n", p.Kind, p.Tau)
			}
			return nil
		})
		return
	}
	if !all && *which != "table1" && *which != "fig2" && *which != "fig3" &&
		*which != "fig4ep" && *which != "fig4is" {
		fmt.Fprintf(os.Stderr, "gridbench: unknown experiment %q (try also: estimators)\n", *which)
		os.Exit(2)
	}
}
