// Command p2pmpirun submits an MPI job, mirroring the paper's CLI:
//
//	p2pmpirun -n 16 -r 1 -a concentrate hostname
//
// Two modes:
//
//   - real (default): spins up an ephemeral submitter MPD on TCP, books
//     peers previously started with mpiboot through the given supernode,
//     runs the program and prints every process's output;
//   - -sim: deploys a modelled testbed in virtual time and submits there
//     (useful to explore allocations without a cluster). -grid selects
//     the testbed: the paper's Grid'5000 by default, or a synthetic
//     topology ("synth:S=12,H=400") scaling to thousands of hosts.
//
// The -a strategy accepts any name in the placement registry — the
// paper's spread/concentrate plus mixed, random, minsites, comm-aware
// and anything registered by embedding programs.
//
// With -jobs K (K > 1) the same job is submitted K times concurrently
// through the multi-job scheduler: the copies contend for host slots,
// lose reservation races, back off and retry — printing one summary per
// job plus aggregate contention counters.
//
// With -mtbf (simulated modes only) seeded host churn runs underneath:
// hosts fail and recover with the given mean time between failures
// (-mttr tunes repair time), the submission runs with the mid-run
// failure detector armed (-detect), and a replication degree -r 2 or
// higher lets the job survive hosts dying under it — the quickest way
// to watch P2P-MPI's replica failover engage:
//
//	p2pmpirun -sim -grid synth:S=4,H=24 -n 4 -r 2 -mtbf 240s -seed 7 spin 60
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"p2pmpi/internal/churn"
	"p2pmpi/internal/core"
	"p2pmpi/internal/exp"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/nas"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/sched"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

func main() {
	n := flag.Int("n", 1, "number of MPI processes")
	r := flag.Int("r", 1, "replication degree")
	alloc := flag.String("a", "concentrate", "allocation strategy: "+strings.Join(core.Names(), "|"))
	sim := flag.Bool("sim", false, "run against a simulated testbed (see -grid)")
	gridSpec := flag.String("grid", "grid5000", "simulated testbed (with -sim): grid5000 or synth:S=12,H=400,...")
	seed := flag.Int64("seed", 42, "simulation seed (with -sim)")
	snCount := flag.Int("sn", 0, "supernode-federation width K (with -sim; 0 defers to the -grid spec's sn value, default 1)")
	snAddr := flag.String("supernode", "127.0.0.1:8800", "supernode address (real mode)")
	mpdAddr := flag.String("mpd", "127.0.0.1:9050", "ephemeral submitter MPD address (real mode)")
	rsAddr := flag.String("rs", "127.0.0.1:9051", "ephemeral submitter RS address (real mode)")
	timeout := flag.Duration("timeout", 5*time.Minute, "job timeout")
	jobs := flag.Int("jobs", 1, "number of concurrent copies of the job")
	mtbf := flag.Duration("mtbf", 0, "inject seeded host churn with this mean time between failures (with -sim; 0 disables)")
	mttr := flag.Duration("mttr", time.Minute, "mean host repair time (with -mtbf)")
	detect := flag.Duration("detect", 10*time.Second, "mid-run failure-detector probe period (with -mtbf)")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: p2pmpirun -n N [-r R] [-a strategy] [-sim] prog [args...]")
		os.Exit(2)
	}
	strategy, err := core.ParseStrategy(*alloc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2pmpirun: %v\n", err)
		os.Exit(2)
	}
	topo, err := grid.ParseTopologySpec(*gridSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2pmpirun: -grid: %v\n", err)
		os.Exit(2)
	}
	if topo.IsSynthetic() && !*sim {
		fmt.Fprintln(os.Stderr, "p2pmpirun: -grid selects a simulated testbed and requires -sim")
		os.Exit(2)
	}
	if *mtbf > 0 && !*sim {
		fmt.Fprintln(os.Stderr, "p2pmpirun: -mtbf (seeded churn injection) requires -sim")
		os.Exit(2)
	}
	opts := exp.DefaultOptions(*seed)
	opts.Topology = topo
	opts.Supernodes = *snCount
	spec := mpd.JobSpec{
		Program:  flag.Arg(0),
		Args:     flag.Args()[1:],
		N:        *n,
		R:        *r,
		Strategy: strategy,
		Timeout:  *timeout,
	}
	faults := churn.Config{Seed: *seed, MTBF: *mtbf, MTTR: *mttr,
		Horizon: *timeout + 30*time.Minute}
	if *mtbf > 0 {
		spec.FailureDetect = *detect
	}

	if *jobs > 1 {
		runConcurrent(spec, *jobs, *sim, opts, faults, *snAddr, *mpdAddr, *rsAddr)
		return
	}

	var res *mpd.JobResult
	if *sim {
		res, err = runSim(spec, opts, faults)
	} else {
		res, err = runReal(spec, *snAddr, *mpdAddr, *rsAddr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2pmpirun: %v\n", err)
		os.Exit(1)
	}
	printResult(res)
	// Exit status follows the replication criterion: the job delivered
	// iff every rank completed through at least one replica. Individual
	// replica losses print as FAIL lines but do not fail a run the
	// replication degree absorbed (with R=1 the two criteria coincide).
	if res.LostRanks() > 0 {
		os.Exit(1)
	}
}

// runConcurrent pushes K copies of the job through the multi-job
// scheduler and prints per-job summaries plus contention totals.
func runConcurrent(spec mpd.JobSpec, k int, sim bool, opts exp.Options, faults churn.Config, snAddr, mpdAddr, rsAddr string) {
	var completed []*sched.Job
	var err error
	if sim {
		completed, err = concurrentSim(spec, k, opts, faults)
	} else {
		completed, err = concurrentReal(spec, k, snAddr, mpdAddr, rsAddr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2pmpirun: %v\n", err)
		os.Exit(1)
	}
	failed := 0
	for _, j := range completed {
		if j.Err != nil {
			failed++
			fmt.Printf("job #%d FAILED after %d attempt(s): %v\n", j.ID, j.Attempts, j.Err)
			continue
		}
		sites := len(j.Result.Assignment.HostsBySite())
		fmt.Printf("job #%d ok: %d procs on %d hosts across %d site(s), %v (attempts %d, lost races %d)\n",
			j.ID, j.Result.Assignment.TotalProcs(), j.Result.Assignment.UsedHosts(),
			sites, j.Latency().Round(time.Millisecond), j.Attempts, j.Conflicts)
	}
	fmt.Printf("%d/%d jobs completed\n", k-failed, k)
	if failed > 0 {
		os.Exit(1)
	}
}

// concurrentSim boots the modelled grid and drives the scheduler in
// virtual time through the experiment harness's shared pump.
func concurrentSim(spec mpd.JobSpec, k int, opts exp.Options, faults churn.Config) ([]*sched.Job, error) {
	w := exp.NewWorld(opts)
	defer w.Close()
	fmt.Fprintf(os.Stderr, "p2pmpirun: booting the simulated %s testbed (%d peers)...\n",
		opts.Topology, len(w.Peers))
	if err := w.Boot(); err != nil {
		return nil, err
	}
	driver := startChurn(w, faults)
	cfg := sched.Config{Seed: opts.Seed}
	if faults.MTBF > 0 {
		// Under churn, failure outcomes (a host dying between Acquire
		// and launch, a rank losing every replica) are re-booked like
		// contention — the same classifier the churn sweep uses.
		cfg.IsContention = exp.ChurnRetryable
	}
	jobs, _, err := exp.RunJobs(w, spec, k, cfg)
	reportChurn(driver)
	return jobs, err
}

// startChurn arms fault injection on a booted world when -mtbf asks
// for it.
func startChurn(w *exp.World, faults churn.Config) *churn.Driver {
	if faults.MTBF <= 0 {
		return nil
	}
	fmt.Fprintf(os.Stderr, "p2pmpirun: injecting churn (mtbf %s, mttr %s)\n", faults.MTBF, faults.MTTR)
	return w.StartChurn(faults)
}

// reportChurn prints what the injection actually did.
func reportChurn(d *churn.Driver) {
	if d == nil {
		return
	}
	st := d.Stop()
	fmt.Fprintf(os.Stderr, "p2pmpirun: churn injected %d host failures (%.1f%% host-time down)\n",
		st.Failures, 100*st.DownFraction())
}

// concurrentReal drives the scheduler on the wall clock through an
// ephemeral submitter MPD. Host capacities are unknown in advance, so
// the ledger is unconstrained and contention resolves purely through
// reservation races and backoff.
func concurrentReal(spec mpd.JobSpec, k int, snAddr, mpdAddr, rsAddr string) ([]*sched.Job, error) {
	submitter := mpd.New(vtime.Real{}, transport.TCP{}, mpd.Config{
		Self: proto.PeerInfo{
			ID: "p2pmpirun-submitter", Site: "local",
			MPDAddr: mpdAddr, RSAddr: rsAddr,
		},
		P:    0,
		Seed: int64(os.Getpid()),
		Shared: &mpd.Shared{
			SupernodeAddr: snAddr,
			Programs:      submitterRegistry(),
			PingInterval:  2 * time.Second,
		},
	})
	if err := submitter.Start(); err != nil {
		return nil, err
	}
	defer submitter.Close()
	time.Sleep(3 * time.Second) // let registration and a ping round settle
	sc := sched.New(vtime.Real{}, submitter, nil, sched.Config{Workers: k, Seed: int64(os.Getpid())})
	sc.Start()
	for i := 0; i < k; i++ {
		sc.Enqueue(spec)
	}
	jobs := sc.Wait(k)
	sc.Close()
	return jobs, nil
}

func runSim(spec mpd.JobSpec, opts exp.Options, faults churn.Config) (*mpd.JobResult, error) {
	w := exp.NewWorld(opts)
	defer w.Close()
	fmt.Fprintf(os.Stderr, "p2pmpirun: booting the simulated %s testbed (%d peers)...\n",
		opts.Topology, len(w.Peers))
	if err := w.Boot(); err != nil {
		return nil, err
	}
	driver := startChurn(w, faults)
	res, err := w.Submit(spec)
	reportChurn(driver)
	return res, err
}

func runReal(spec mpd.JobSpec, snAddr, mpdAddr, rsAddr string) (*mpd.JobResult, error) {
	// An ephemeral MPD with P=0: it submits but does not compute.
	submitter := mpd.New(vtime.Real{}, transport.TCP{}, mpd.Config{
		Self: proto.PeerInfo{
			ID: "p2pmpirun-submitter", Site: "local",
			MPDAddr: mpdAddr, RSAddr: rsAddr,
		},
		P:    0,
		Seed: int64(os.Getpid()),
		Shared: &mpd.Shared{
			SupernodeAddr: snAddr,
			Programs:      submitterRegistry(),
			PingInterval:  2 * time.Second,
		},
	})
	if err := submitter.Start(); err != nil {
		return nil, err
	}
	defer submitter.Close()
	// Let registration and a ping round settle so booking sees latencies.
	time.Sleep(3 * time.Second)
	return submitter.Submit(spec)
}

// submitterRegistry mirrors mpiboot's registry so Submit accepts the
// same program names (the submitter itself never runs them with P=0).
func submitterRegistry() map[string]mpd.Program {
	progs := map[string]mpd.Program{"hostname": mpd.Hostname, "spin": mpd.Spin}
	for _, cls := range []nas.EPClass{nas.EPClassS, nas.EPClassW, nas.EPClassA, nas.EPClassB} {
		progs["ep-"+cls.Name] = nas.EPProgram(cls)
	}
	for _, cls := range []nas.ISClass{nas.ISClassS, nas.ISClassW, nas.ISClassA, nas.ISClassB} {
		progs["is-"+cls.Name] = nas.ISProgram(cls)
	}
	return progs
}

func printResult(res *mpd.JobResult) {
	fmt.Printf("job %s finished in %v (%d processes", res.JobID, res.Duration.Round(time.Millisecond), len(res.Results))
	if res.Failures() > 0 {
		fmt.Printf(", %d FAILED", res.Failures())
	}
	fmt.Println(")")

	hosts := res.Assignment.HostsBySite()
	procs := res.Assignment.ProcsBySite()
	var sites []string
	for s := range hosts {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, s := range sites {
		fmt.Printf("  site %-10s %3d hosts %4d processes\n", s, hosts[s], procs[s])
	}
	for _, sr := range res.Results {
		status := "ok"
		if !sr.OK {
			status = "FAIL: " + sr.Err
		}
		out := string(sr.Output)
		if len(out) > 64 {
			out = out[:61] + "..."
		}
		fmt.Printf("  rank %3d.%d [%s] %s\n", sr.Rank, sr.Replica, status, out)
	}
}
