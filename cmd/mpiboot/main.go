// Command mpiboot starts one P2P-MPI peer on real TCP: the MPD daemon
// plus its Reservation Service, registered at a supernode — the paper's
// `mpiboot` (§3.2). The peer then answers latency pings, accepts
// reservations under its owner preferences (-p, -j, -deny) and hosts MPI
// processes for submitted jobs.
//
//	mpiboot -id node1 -mpd 127.0.0.1:9100 -rs 127.0.0.1:9101 \
//	        -supernode 127.0.0.1:8800 -p 2 -j 1
//
// The program registry contains the paper's programs: hostname, the NAS
// EP kernel (classes S/W/A/B) and the NAS IS kernel (classes S/W/A/B).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"p2pmpi/internal/mpd"
	"p2pmpi/internal/nas"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// registry assembles the standard program set for real peers.
func registry() map[string]mpd.Program {
	progs := map[string]mpd.Program{"hostname": mpd.Hostname}
	for _, cls := range []nas.EPClass{nas.EPClassS, nas.EPClassW, nas.EPClassA, nas.EPClassB} {
		progs["ep-"+cls.Name] = nas.EPProgram(cls)
	}
	for _, cls := range []nas.ISClass{nas.ISClassS, nas.ISClassW, nas.ISClassA, nas.ISClassB} {
		progs["is-"+cls.Name] = nas.ISProgram(cls)
	}
	return progs
}

func main() {
	id := flag.String("id", "", "peer identity (default: hostname)")
	site := flag.String("site", "local", "site label")
	mpdAddr := flag.String("mpd", "127.0.0.1:9100", "MPD listen address")
	rsAddr := flag.String("rs", "127.0.0.1:9101", "Reservation Service listen address")
	snAddr := flag.String("supernode", "127.0.0.1:8800", "supernode address")
	p := flag.Int("p", 1, "owner preference P: processes per application")
	j := flag.Int("j", 1, "owner preference J: simultaneous applications")
	deny := flag.String("deny", "", "comma-separated denied submitter IDs")
	procBase := flag.Int("procbase", 41000, "first port for launched processes")
	flag.Parse()

	if *id == "" {
		h, err := os.Hostname()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpiboot: cannot determine hostname; pass -id")
			os.Exit(1)
		}
		*id = h
	}
	var denyList []string
	if *deny != "" {
		denyList = strings.Split(*deny, ",")
	}

	daemon := mpd.New(vtime.Real{}, transport.TCP{}, mpd.Config{
		Self: proto.PeerInfo{
			ID: *id, Site: *site, MPDAddr: *mpdAddr, RSAddr: *rsAddr,
		},
		P:    *p,
		J:    *j,
		Deny: denyList,
		Seed: int64(os.Getpid()),
		Shared: &mpd.Shared{
			SupernodeAddr: *snAddr,
			Programs:      registry(),
			ProcBasePort:  *procBase,
		},
	})
	if err := daemon.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "mpiboot: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mpiboot: peer %s up (MPD %s, RS %s, P=%d, J=%d) -> supernode %s\n",
		*id, *mpdAddr, *rsAddr, *p, *j, *snAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mpiboot: shutting down")
	daemon.Close()
}
