// Command supernode runs the P2P-MPI bootstrap daemon on real TCP: the
// entry point every peer contacts to join the overlay (§3.2).
//
//	supernode -addr :8800 -ttl 90s
//
// A federated tier runs one process per shard, each given the full
// shard-ordered member list and its own index:
//
//	supernode -addr :8800 -shard 0 -federation host0:8800,host1:8800
//	supernode -addr :8800 -shard 1 -federation host0:8800,host1:8800
//
// Members gossip membership digests on -gossip and answer host-list
// queries from their merged federation view; peers register with their
// rendezvous home shard (MPDs configured with the same -federation list
// compute it themselves) and fail over across shards.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p2pmpi/internal/overlay"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

func main() {
	addr := flag.String("addr", ":8800", "listen address")
	ttl := flag.Duration("ttl", 90*time.Second, "peer expiry without alive signals")
	shard := flag.Int("shard", 0, "this member's shard index (with -federation)")
	federation := flag.String("federation", "", "comma-separated federation member addresses in shard order (empty: standalone)")
	gossip := flag.Duration("gossip", time.Second, "digest-exchange period between federation members")
	flag.Parse()

	var members []string
	for _, m := range strings.Split(*federation, ",") {
		if m = strings.TrimSpace(m); m != "" {
			members = append(members, m)
		}
	}
	if len(members) > 0 && (*shard < 0 || *shard >= len(members)) {
		fmt.Fprintf(os.Stderr, "supernode: -shard %d out of range for %d members\n", *shard, len(members))
		os.Exit(2)
	}

	sn := overlay.NewSupernode(vtime.Real{}, transport.TCP{}, overlay.SupernodeConfig{
		Addr:           *addr,
		TTL:            *ttl,
		Shard:          *shard,
		Federation:     members,
		GossipInterval: *gossip,
	})
	if err := sn.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "supernode: %v\n", err)
		os.Exit(1)
	}
	if len(members) > 1 {
		fmt.Printf("supernode listening on %s (ttl %v, shard %d of %d, gossip %v)\n",
			sn.Addr(), *ttl, *shard, len(members), *gossip)
	} else {
		fmt.Printf("supernode listening on %s (ttl %v)\n", sn.Addr(), *ttl)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if len(members) > 1 {
				fmt.Printf("supernode: %d peers owned, %d in merged view\n",
					sn.PeerCount(), sn.MergedCount())
			} else {
				fmt.Printf("supernode: %d peers listed\n", sn.PeerCount())
			}
		case <-sig:
			fmt.Println("supernode: shutting down")
			sn.Close()
			return
		}
	}
}
