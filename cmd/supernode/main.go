// Command supernode runs the P2P-MPI bootstrap daemon on real TCP: the
// entry point every peer contacts to join the overlay (§3.2).
//
//	supernode -addr :8800 -ttl 90s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"p2pmpi/internal/overlay"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

func main() {
	addr := flag.String("addr", ":8800", "listen address")
	ttl := flag.Duration("ttl", 90*time.Second, "peer expiry without alive signals")
	flag.Parse()

	sn := overlay.NewSupernode(vtime.Real{}, transport.TCP{}, overlay.SupernodeConfig{
		Addr: *addr,
		TTL:  *ttl,
	})
	if err := sn.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "supernode: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("supernode listening on %s (ttl %v)\n", sn.Addr(), *ttl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			fmt.Printf("supernode: %d peers listed\n", sn.PeerCount())
		case <-sig:
			fmt.Println("supernode: shutting down")
			sn.Close()
			return
		}
	}
}
