module p2pmpi

go 1.24
